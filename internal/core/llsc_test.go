package core

import (
	"runtime"
	"sync"
	"testing"

	"lfrc/internal/mem"
)

func TestLoadLinkedPinsReferent(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p)

			l := w.rc.LoadLinked(a)
			if l.Value() != p {
				t.Fatalf("LoadLinked observed %d, want %d", l.Value(), p)
			}
			if got := w.rc.RCOf(p); got != 2 {
				t.Errorf("rc after LL = %d, want 2 (cell + link)", got)
			}
			// Even if the cell is cleared, the link keeps p alive.
			w.rc.Store(a, 0)
			if w.h.IsFreed(p) {
				t.Fatal("linked object freed while link outstanding")
			}
			w.rc.Unlink(&l)
			if !w.h.IsFreed(p) {
				t.Error("object not freed after Unlink dropped the last reference")
			}
		})
	}
}

func TestStoreConditionalSucceedsWhenUnchanged(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			q, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p)

			l := w.rc.LoadLinked(a)
			if !w.rc.StoreConditional(&l, q) {
				t.Fatal("SC failed with unchanged cell")
			}
			if got := mem.Ref(w.rc.WordLoad(a)); got != q {
				t.Errorf("cell = %d after SC, want %d", got, q)
			}
			if !w.h.IsFreed(p) {
				t.Error("displaced referent not freed (cell ref + link ref should both be gone)")
			}
			if got := w.rc.RCOf(q); got != 2 {
				t.Errorf("rc(q) = %d, want 2 (local + cell)", got)
			}
			w.rc.Destroy(q)
		})
	}
}

func TestStoreConditionalFailsAfterInterference(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			q, _ := w.rc.NewObject(w.node)
			r, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p)

			l := w.rc.LoadLinked(a)
			w.rc.Store(a, q) // interference between LL and SC
			if w.rc.StoreConditional(&l, r) {
				t.Fatal("SC succeeded despite interference")
			}
			if got := mem.Ref(w.rc.WordLoad(a)); got != q {
				t.Errorf("cell = %d, want %d (interfering store)", got, q)
			}
			// r's provisional increment must be compensated.
			if got := w.rc.RCOf(r); got != 1 {
				t.Errorf("rc(r) = %d after failed SC, want 1", got)
			}
			w.rc.Destroy(q, r)
		})
	}
}

func TestStoreConditionalConsumesLink(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p)

			l := w.rc.LoadLinked(a)
			if !w.rc.StoreConditional(&l, 0) {
				t.Fatal("first SC failed")
			}
			if w.rc.StoreConditional(&l, 0) {
				t.Error("second SC on a consumed link succeeded")
			}
			w.rc.Unlink(&l) // must be a no-op, not a double-destroy
			if got := w.h.Stats().DoubleFrees; got != 0 {
				t.Errorf("DoubleFrees = %d", got)
			}
		})
	}
}

func TestLLSCNullCell(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t) // null
			p, _ := w.rc.NewObject(w.node)

			l := w.rc.LoadLinked(a)
			if l.Value() != 0 {
				t.Fatalf("LL of null cell = %d", l.Value())
			}
			if !w.rc.StoreConditional(&l, p) {
				t.Fatal("SC from null failed")
			}
			if got := w.rc.RCOf(p); got != 2 {
				t.Errorf("rc(p) = %d, want 2", got)
			}
			w.rc.Store(a, 0)
			w.rc.Destroy(p)
		})
	}
}

// TestLLSCConcurrentCounter builds the classic LL/SC increment loop over an
// LFRC pointer cell: each "increment" swaps in a freshly allocated object
// and retires the old one. Exactness of the final chain length proves SC
// linearizes; zero leaks prove the rc discipline.
func TestLLSCConcurrentCounter(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)

			const workers, perW = 4, 800
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for j := 0; j < perW; j++ {
						n, err := w.rc.NewObject(w.node)
						if err != nil {
							t.Errorf("NewObject: %v", err)
							return
						}
						for {
							l := w.rc.LoadLinked(a)
							// Chain the new node before the old head.
							w.rc.Store(w.h.FieldAddr(n, 0), l.Value())
							// Bump a counter in the node payload.
							w.rc.WordStore(w.h.FieldAddr(n, 2), uint64(i)<<32|uint64(j))
							if w.rc.StoreConditional(&l, n) {
								break
							}
						}
						w.rc.Destroy(n)
					}
				}(i)
			}
			wg.Wait()

			// Walk the chain: length must be exactly workers*perW.
			length := 0
			var cur mem.Ref
			w.rc.Load(a, &cur)
			for cur != 0 {
				length++
				var next mem.Ref
				w.rc.Load(w.h.FieldAddr(cur, 0), &next)
				w.rc.Destroy(cur)
				cur = next
			}
			if length != workers*perW {
				t.Errorf("chain length = %d, want %d", length, workers*perW)
			}

			w.rc.Store(a, 0)
			if got := w.h.Stats().LiveObjects; got != 1 { // the holder
				t.Errorf("LiveObjects = %d, want 1", got)
			}
		})
	}
}

func TestDCASMixedSemantics(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			q, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p)
			mark := w.h.FieldAddr(q, 2) // scalar cell on the surviving object

			// Fails when the scalar mismatches; q's count compensated.
			if w.rc.DCASMixed(a, p, q, mark, 1, 1) {
				t.Fatal("DCASMixed succeeded with wrong scalar old")
			}
			if got := w.rc.RCOf(q); got != 1 {
				t.Errorf("rc(q) = %d after failure, want 1", got)
			}

			// Succeeds when both match: pointer swapped with counts,
			// scalar swapped without.
			if !w.rc.DCASMixed(a, p, q, mark, 0, 7) {
				t.Fatal("DCASMixed failed with matching olds")
			}
			if got := w.rc.WordLoad(mark); got != 7 {
				t.Errorf("scalar = %d, want 7", got)
			}
			if !w.h.IsFreed(p) {
				t.Error("displaced pointer's referent not freed")
			}
			if got := w.rc.RCOf(q); got != 2 {
				t.Errorf("rc(q) = %d, want 2", got)
			}
			w.rc.Destroy(q)
		})
	}
}
