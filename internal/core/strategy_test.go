package core

import (
	"runtime"
	"sync"
	"testing"

	"lfrc/internal/mem"
)

// These tests exercise the split (weighted) reference-count strategy at the
// boundaries that never occur at the default 2^16 stash size: refill when a
// link's stash drains to its last unit, external-count merge when a link is
// destroyed, and ref/weight packing at the field limits. `make check-rc`
// runs them under -race on both engines.

// splitWorld builds a world on the split strategy with tiny weights so the
// boundary paths fire constantly.
func splitWorlds(link, refill int64) map[string]func(t *testing.T, opts ...Option) *world {
	base := worldFactories()
	out := make(map[string]func(t *testing.T, opts ...Option) *world, len(base))
	for name, mk := range base {
		mk := mk
		out[name] = func(t *testing.T, opts ...Option) *world {
			t.Helper()
			opts = append([]Option{
				WithStrategyKind(StrategySplit),
				WithSplitWeights(link, refill),
			}, opts...)
			return mk(t, opts...)
		}
	}
	return out
}

// linkWeight decodes the stash weight of the link currently in cell a.
func linkWeight(w *world, a mem.Addr) int64 {
	_, wt := w.rc.DecodeLink(w.rc.WordLoad(a))
	return wt
}

func TestSplitCodecBoundaries(t *testing.T) {
	s := strategyFor(StrategySplit, splitMaxWeight, splitMaxWeight).(*splitStrategy)

	if got := s.Pack(0); got != 0 {
		t.Errorf("Pack(0) = %#x, want 0", got)
	}
	// The widest possible word — max ref with max weight — must round-trip
	// and stay inside the engine's value range, clear of descriptor tags.
	maxRef := mem.Ref(0xFFFF_FFFF)
	word := s.Pack(maxRef)
	if got := s.Ref(word); got != maxRef {
		t.Errorf("Ref(Pack(max)) = %#x, want %#x", got, maxRef)
	}
	if got := s.Weight(word); got != splitMaxWeight {
		t.Errorf("Weight(Pack(max)) = %d, want %d", got, splitMaxWeight)
	}
	if word&^mem.ValueMask != 0 {
		t.Errorf("packed word %#x overflows ValueMask", word)
	}

	// A bare-ref word (no weight bits) decodes as a weight-1 link, never 0:
	// a release through it must not vanish.
	if got := s.Weight(uint64(maxRef)); got != 1 {
		t.Errorf("Weight(bare ref) = %d, want 1", got)
	}
	if got := s.Weight(0); got != 0 {
		t.Errorf("Weight(0) = %d, want 0", got)
	}

	// Out-of-range construction weights clamp into the packable field.
	c := strategyFor(StrategySplit, splitMaxWeight+100, -5).(*splitStrategy)
	if c.link != splitMaxWeight || c.refill != splitDefaultWeight {
		t.Errorf("clamp: link=%d refill=%d", c.link, c.refill)
	}

	f := strategyFor(StrategyFigure2, 0, 0)
	if f.Name() != "figure2" || f.Pack(maxRef) != uint64(maxRef) || f.LinkCredit() != 1 {
		t.Error("figure2 strategy must be the identity codec with unit credit")
	}
}

func TestSplitStoreInstallsWeightedLink(t *testing.T) {
	const W = 8
	for name, mk := range splitWorlds(W, W) {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)

			w.rc.Store(a, p)
			// Invariant: rc == sum of outstanding weights = local(1) + stash(W).
			if got := w.rc.RCOf(p); got != 1+W {
				t.Errorf("rc(p) = %d, want %d (local + stash)", got, 1+W)
			}
			if got := linkWeight(w, a); got != W {
				t.Errorf("stash = %d, want %d", got, W)
			}

			// Overwriting with null merges the whole stash back and releases
			// the link: only the local reference remains.
			w.rc.Store(a, 0)
			if got := w.rc.RCOf(p); got != 1 {
				t.Errorf("after unlink, rc(p) = %d, want 1", got)
			}
			if got := w.rc.Stats().ExtMerges; got == 0 {
				t.Error("unlink of a fresh link did not count an external merge")
			}
			w.rc.Destroy(p)
			if !w.h.IsFreed(p) {
				t.Error("object not freed after last Destroy")
			}
		})
	}
}

func TestSplitStoreAllocTopsUpToFullStash(t *testing.T) {
	const W = 8
	for name, mk := range splitWorlds(W, W) {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)

			// StoreAlloc transfers the weight-1 NewObject reference and adds
			// AllocCredit = W-1, so the cell still carries a full stash.
			w.rc.StoreAlloc(a, p)
			if got := w.rc.RCOf(p); got != W {
				t.Errorf("rc(p) = %d, want %d (stash only)", got, W)
			}
			if got := linkWeight(w, a); got != W {
				t.Errorf("stash = %d, want %d", got, W)
			}
			w.rc.Store(a, 0)
			if !w.h.IsFreed(p) {
				t.Error("unlinking the only reference did not free the object")
			}
		})
	}
}

func TestSplitLoadBorrowsFromStash(t *testing.T) {
	const W = 8
	for name, mk := range splitWorlds(W, W) {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p) // rc = W, stash = W

			// Each fast-path Load moves one unit from the stash to a local:
			// the total (rc word) must not move at all.
			locals := make([]mem.Ref, 3)
			for i := range locals {
				w.rc.Load(a, &locals[i])
				if locals[i] != p {
					t.Fatalf("Load = %d, want %d", locals[i], p)
				}
			}
			if got := w.rc.RCOf(p); got != W {
				t.Errorf("rc(p) after %d borrows = %d, want %d (untouched)", len(locals), got, W)
			}
			if got := linkWeight(w, a); got != W-int64(len(locals)) {
				t.Errorf("stash = %d, want %d", got, W-int64(len(locals)))
			}
			if got := w.rc.Stats().WeightRefills; got != 0 {
				t.Errorf("WeightRefills = %d, want 0 (stash never drained)", got)
			}

			// Return the borrows, unlink, and the object dies exactly once.
			w.rc.Destroy(locals...)
			w.rc.Store(a, 0)
			if !w.h.IsFreed(p) {
				t.Error("object not freed")
			}
			if got := w.rc.Stats().Frees; got != 1 {
				t.Errorf("Frees = %d, want 1", got)
			}
		})
	}
}

func TestSplitRefillAtDrainedStash(t *testing.T) {
	const W, K = 2, 3
	for name, mk := range splitWorlds(W, K) {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p) // rc = 2, stash = 2

			// Borrow past the stash: the second Load finds the last unit and
			// must take the refill slow path (stash -> K, rc += K) instead of
			// ever letting the stash reach 0.
			var locals []mem.Ref
			for i := 0; i < 5; i++ {
				var dst mem.Ref
				w.rc.Load(a, &dst)
				locals = append(locals, dst)
				if got := linkWeight(w, a); got < 1 {
					t.Fatalf("stash dropped to %d after load %d; the link no longer pins the object", got, i)
				}
			}
			if got := w.rc.Stats().WeightRefills; got == 0 {
				t.Error("draining the stash never took the refill path")
			}
			// Conservation at quiescence: rc == locals + stash.
			want := uint64(len(locals)) + uint64(linkWeight(w, a))
			if got := w.rc.RCOf(p); got != want {
				t.Errorf("rc(p) = %d, want %d (locals %d + stash %d)", got, want, len(locals), linkWeight(w, a))
			}

			w.rc.Destroy(locals...)
			w.rc.Store(a, 0)
			if !w.h.IsFreed(p) {
				t.Error("object not freed after all references dropped")
			}
			hs := w.h.Stats()
			if hs.DoubleFrees != 0 || hs.Corruptions != 0 {
				t.Errorf("DoubleFrees=%d Corruptions=%d, want 0/0", hs.DoubleFrees, hs.Corruptions)
			}
		})
	}
}

func TestSplitMaxWeightPackingBoundary(t *testing.T) {
	// The widest stash the packing supports must behave like any other: no
	// bleed into the ref bits on borrow, no count corruption on merge.
	for name, mk := range splitWorlds(splitMaxWeight, splitMaxWeight) {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p)

			var dst mem.Ref
			w.rc.Load(a, &dst)
			if dst != p {
				t.Fatalf("Load = %d, want %d", dst, p)
			}
			if got := linkWeight(w, a); got != splitMaxWeight-1 {
				t.Errorf("stash = %d, want %d", got, splitMaxWeight-1)
			}
			if got, _ := w.rc.DecodeLink(w.rc.WordLoad(a)); got != p {
				t.Errorf("ref bits corrupted: %d, want %d", got, p)
			}
			w.rc.Destroy(dst)
			w.rc.Store(a, 0)
			if !w.h.IsFreed(p) {
				t.Error("object not freed")
			}
		})
	}
}

func TestSplitCASAndDCASSwingRefs(t *testing.T) {
	const W = 4
	for name, mk := range splitWorlds(W, W) {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			q, _ := w.rc.NewObject(w.node)
			w.rc.Store(a, p)

			// Drain one unit so the cell's word is not the freshly packed
			// value: the CAS must still succeed — it compares pointers, not
			// raw words.
			var dst mem.Ref
			w.rc.Load(a, &dst)
			w.rc.Destroy(dst)

			if !w.rc.CAS(a, p, q) {
				t.Fatal("CAS(p -> q) failed despite unchanged pointer")
			}
			if got := w.rc.RCOf(p); got != 1 {
				t.Errorf("rc(p) after displacement = %d, want 1", got)
			}
			if got := w.rc.RCOf(q); got != 1+W {
				t.Errorf("rc(q) = %d, want %d", got, 1+W)
			}
			if w.rc.CAS(a, p, q) {
				t.Error("CAS succeeded against a stale pointer")
			}

			// DCAS across two cells, same discipline.
			b := w.sharedPtr(t)
			w.rc.Store(b, q)
			if !w.rc.DCAS(a, b, q, q, p, p) {
				t.Fatal("DCAS failed despite matching pointers")
			}
			if got := w.rc.RCOf(p); got != 1+2*W {
				t.Errorf("rc(p) = %d, want %d", got, 1+2*W)
			}
			w.rc.Store(a, 0)
			w.rc.Store(b, 0)
			w.rc.Destroy(p, q)
			if !w.h.IsFreed(p) || !w.h.IsFreed(q) {
				t.Error("objects not freed")
			}
		})
	}
}

func TestSplitConcurrentChurnKeepsSafety(t *testing.T) {
	// The TestConcurrentLoadStoreChurn scenario with stash sizes small
	// enough that refills, merges and borrows race constantly. Run with
	// -race on both engines (make check-rc).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range splitWorlds(2, 2) {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p)

			const (
				readers = 6
				rounds  = 2000
			)
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var dst mem.Ref
					for {
						select {
						case <-stop:
							w.rc.Destroy(dst)
							return
						default:
							w.rc.Load(a, &dst)
							if dst != 0 && w.h.IsFreed(dst) {
								t.Error("Load returned a freed object")
								w.rc.Destroy(dst)
								return
							}
						}
					}
				}()
			}
			for i := 0; i < rounds; i++ {
				n, err := w.rc.NewObject(w.node)
				if err != nil {
					t.Fatalf("NewObject: %v", err)
				}
				w.rc.StoreAlloc(a, n)
			}
			close(stop)
			wg.Wait()
			w.rc.Store(a, 0)

			s := w.rc.Stats()
			if s.PoisonedRCUpdates != 0 {
				t.Errorf("PoisonedRCUpdates = %d, want 0", s.PoisonedRCUpdates)
			}
			hs := w.h.Stats()
			if hs.Corruptions != 0 || hs.DoubleFrees != 0 {
				t.Errorf("Corruptions=%d DoubleFrees=%d, want 0/0", hs.Corruptions, hs.DoubleFrees)
			}
			if hs.LiveObjects != 1 {
				t.Errorf("LiveObjects = %d, want 1 (the holder)", hs.LiveObjects)
			}
		})
	}
}

func TestSplitDCASMixedPointerAndScalar(t *testing.T) {
	const W = 4
	for name, mk := range splitWorlds(W, W) {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			holder, err := w.rc.NewObject(w.node) // fields: ptr, ptr, scalar
			if err != nil {
				t.Fatalf("NewObject: %v", err)
			}
			pa := w.h.FieldAddr(holder, 0)
			sa := w.h.FieldAddr(holder, 2)
			p, _ := w.rc.NewObject(w.node)
			q, _ := w.rc.NewObject(w.node)
			w.rc.Store(pa, p)
			w.rc.WordStore(sa, 7)

			// Weight noise on the pointer side must not fail the mixed DCAS.
			var dst mem.Ref
			w.rc.Load(pa, &dst)
			w.rc.Destroy(dst)

			if !w.rc.DCASMixed(pa, p, q, sa, 7, 9) {
				t.Fatal("DCASMixed failed despite matching pointer and scalar")
			}
			if got := w.rc.WordLoad(sa); got != 9 {
				t.Errorf("scalar = %d, want 9", got)
			}
			if got := w.rc.RCOf(p); got != 1 {
				t.Errorf("rc(p) = %d, want 1 (stash merged out)", got)
			}
			// A moved scalar is an abstract failure and compensates q's credit.
			if w.rc.DCASMixed(pa, q, p, sa, 7, 1) {
				t.Error("DCASMixed succeeded against a stale scalar")
			}
			if got := w.rc.RCOf(q); got != 1+W {
				t.Errorf("rc(q) = %d, want %d after compensation", got, 1+W)
			}
			w.rc.Store(pa, 0)
			w.rc.Destroy(p, q, holder)
		})
	}
}
