package core

import (
	"testing"

	"lfrc/internal/mem"
)

func TestIncrementalDestroyParksRemainder(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t, WithIncrementalDestroy(10))
			const n = 100
			var head mem.Ref
			for i := 0; i < n; i++ {
				p, _ := w.rc.NewObject(w.node)
				w.rc.StoreAlloc(w.h.FieldAddr(p, 0), head)
				head = p
			}

			w.rc.Destroy(head)
			live := w.h.Stats().LiveObjects
			if live == 0 {
				t.Fatal("incremental destroy reclaimed everything in one call")
			}
			if w.rc.ZombieCount() == 0 {
				t.Fatal("no zombies parked despite exceeding the budget")
			}

			freed := w.rc.DrainZombies(0)
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("after drain, LiveObjects = %d, want 0", got)
			}
			if int64(freed) != live {
				t.Errorf("DrainZombies freed %d, want %d", freed, live)
			}
			if w.rc.ZombieCount() != 0 {
				t.Errorf("ZombieCount = %d after full drain", w.rc.ZombieCount())
			}
		})
	}
}

func TestIncrementalDestroyBudgetIsRespected(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			const budget = 7
			w := mk(t, WithIncrementalDestroy(budget))
			const n = 50
			var head mem.Ref
			for i := 0; i < n; i++ {
				p, _ := w.rc.NewObject(w.node)
				w.rc.StoreAlloc(w.h.FieldAddr(p, 0), head)
				head = p
			}

			w.rc.Destroy(head)
			if got := n - w.h.Stats().LiveObjects; got != budget {
				t.Errorf("first call freed %d, want exactly the budget %d", got, budget)
			}

			// Each subsequent drain step frees at most the requested
			// amount.
			for w.h.Stats().LiveObjects > 0 {
				before := w.h.Stats().LiveObjects
				freed := w.rc.DrainZombies(5)
				if freed > 5 {
					t.Fatalf("DrainZombies(5) freed %d", freed)
				}
				if freed == 0 && before > 0 {
					t.Fatalf("DrainZombies made no progress with %d live", before)
				}
			}
		})
	}
}

func TestDrainZombiesOnEmptyList(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t, WithIncrementalDestroy(4))
			if got := w.rc.DrainZombies(0); got != 0 {
				t.Errorf("DrainZombies on empty list freed %d", got)
			}
		})
	}
}

func TestEagerModeNeverParks(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t) // default eager
			var head mem.Ref
			for i := 0; i < 1000; i++ {
				p, _ := w.rc.NewObject(w.node)
				w.rc.StoreAlloc(w.h.FieldAddr(p, 0), head)
				head = p
			}
			w.rc.Destroy(head)
			if got := w.rc.Stats().ZombiePushes; got != 0 {
				t.Errorf("ZombiePushes = %d in eager mode", got)
			}
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d, want 0", got)
			}
		})
	}
}

func TestIncrementalDestroyBranchingStructure(t *testing.T) {
	// A binary tree stresses the work-stack bookkeeping: parking must
	// preserve every pending subtree.
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t, WithIncrementalDestroy(3))

			var build func(depth int) mem.Ref
			build = func(depth int) mem.Ref {
				p, err := w.rc.NewObject(w.node)
				if err != nil {
					t.Fatalf("NewObject: %v", err)
				}
				if depth > 0 {
					w.rc.StoreAlloc(w.h.FieldAddr(p, 0), build(depth-1))
					w.rc.StoreAlloc(w.h.FieldAddr(p, 1), build(depth-1))
				}
				return p
			}
			root := build(7) // 255 nodes
			total := w.h.Stats().LiveObjects

			w.rc.Destroy(root)
			w.rc.DrainZombies(0)
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d, want 0 (of %d)", got, total)
			}
		})
	}
}
