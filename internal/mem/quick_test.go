package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickHeaderRoundTrip property-tests that header packing is lossless
// for all in-range inputs and never touches the reserved descriptor bits.
func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(size uint16, typ uint16, freed bool, gen uint32) bool {
		s := int(size)
		id := TypeID(typ & hdrTypeMask)
		g := gen & hdrGenMask
		h := packHeader(s, id, freed, g)
		return h&^ValueMask == 0 &&
			headerSize(h) == s &&
			headerType(h) == id &&
			headerFreed(h) == freed &&
			headerGen(h) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickAllocFreeConservation property-tests the allocator against a
// model: after an arbitrary sequence of allocs and frees, live accounting
// matches the model exactly and freed slots are recycled before new arena
// words are carved.
func TestQuickAllocFreeConservation(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		if len(opsRaw) > 400 {
			opsRaw = opsRaw[:400]
		}
		rng := rand.New(rand.NewSource(seed))
		h := NewHeap(WithMaxWords(2 * segWords))
		typ := h.MustRegisterType(TypeDesc{Name: "t", NumFields: 4, PtrFields: []int{0}})

		live := map[Ref]bool{}
		for _, op := range opsRaw {
			if op%3 != 0 || len(live) == 0 {
				r, err := h.Alloc(typ)
				if err != nil {
					return false
				}
				if live[r] {
					return false // allocator handed out a live slot
				}
				live[r] = true
			} else {
				// Free a pseudo-random live object.
				k := rng.Intn(len(live))
				var victim Ref
				for r := range live {
					if k == 0 {
						victim = r
						break
					}
					k--
				}
				if err := h.Free(victim); err != nil {
					return false
				}
				delete(live, victim)
			}
		}
		s := h.Stats()
		if s.LiveObjects != int64(len(live)) {
			return false
		}
		if s.LiveWords != int64(len(live)*(HeaderWords+4)) {
			return false
		}
		if s.Corruptions != 0 || s.DoubleFrees != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickFreedSlotsAreRecycledFirst checks that as long as a free list is
// non-empty, allocation reuses it instead of growing the arena.
func TestQuickFreedSlotsAreRecycledFirst(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%32) + 1
		h := NewHeap()
		typ := h.MustRegisterType(TypeDesc{Name: "t", NumFields: 2})

		refs := make([]Ref, count)
		for i := range refs {
			refs[i] = h.MustAlloc(typ)
		}
		for _, r := range refs {
			if err := h.Free(r); err != nil {
				return false
			}
		}
		before := h.Stats().HighWater
		for i := 0; i < count; i++ {
			h.MustAlloc(typ)
		}
		after := h.Stats()
		return after.HighWater == before && after.Recycles == int64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickGenerationMonotonic checks that a slot's generation strictly
// increases across realloc cycles.
func TestQuickGenerationMonotonic(t *testing.T) {
	f := func(n uint8) bool {
		cycles := int(n%20) + 2
		h := NewHeap()
		typ := h.MustRegisterType(TypeDesc{Name: "t", NumFields: 1})

		r := h.MustAlloc(typ)
		prev := h.Generation(r)
		for i := 0; i < cycles; i++ {
			if err := h.Free(r); err != nil {
				return false
			}
			r2 := h.MustAlloc(typ)
			if r2 != r {
				return false
			}
			g := h.Generation(r2)
			if g <= prev {
				return false
			}
			prev = g
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
