package mem

import (
	"errors"
	"testing"
)

func testHeap(t *testing.T, opts ...Option) *Heap {
	t.Helper()
	return NewHeap(opts...)
}

func registerPair(t *testing.T, h *Heap) (node, leaf TypeID) {
	t.Helper()
	node = h.MustRegisterType(TypeDesc{Name: "node", NumFields: 3, PtrFields: []int{0, 1}})
	leaf = h.MustRegisterType(TypeDesc{Name: "leaf", NumFields: 1})
	return node, leaf
}

func TestHeaderPacking(t *testing.T) {
	tests := []struct {
		name  string
		size  int
		typ   TypeID
		freed bool
		gen   uint32
	}{
		{name: "zeros", size: 0, typ: 0, freed: false, gen: 0},
		{name: "typical", size: 6, typ: 3, freed: false, gen: 17},
		{name: "freed", size: 64, typ: 9, freed: true, gen: 1},
		{name: "max size", size: hdrSizeMask, typ: 0, freed: false, gen: 0},
		{name: "max type", size: 4, typ: hdrTypeMask, freed: true, gen: 5},
		{name: "max gen", size: 4, typ: 1, freed: false, gen: hdrGenMask},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := packHeader(tt.size, tt.typ, tt.freed, tt.gen)
			if h&^ValueMask != 0 {
				t.Errorf("header %#x uses reserved descriptor bits", h)
			}
			if got := headerSize(h); got != tt.size {
				t.Errorf("size = %d, want %d", got, tt.size)
			}
			if got := headerType(h); got != tt.typ {
				t.Errorf("type = %d, want %d", got, tt.typ)
			}
			if got := headerFreed(h); got != tt.freed {
				t.Errorf("freed = %v, want %v", got, tt.freed)
			}
			if got := headerGen(h); got != tt.gen {
				t.Errorf("gen = %d, want %d", got, tt.gen)
			}
		})
	}
}

func TestPoisonAvoidsDescriptorBits(t *testing.T) {
	if Poison&^ValueMask != 0 {
		t.Fatalf("Poison %#x collides with reserved descriptor bits", Poison)
	}
}

func TestTypeDescValidate(t *testing.T) {
	tests := []struct {
		name    string
		desc    TypeDesc
		wantErr bool
	}{
		{name: "no fields", desc: TypeDesc{Name: "empty"}},
		{name: "scalar only", desc: TypeDesc{Name: "s", NumFields: 2}},
		{name: "pointers", desc: TypeDesc{Name: "p", NumFields: 3, PtrFields: []int{0, 2}}},
		{name: "max fields", desc: TypeDesc{Name: "m", NumFields: MaxFields}},
		{name: "negative fields", desc: TypeDesc{Name: "n", NumFields: -1}, wantErr: true},
		{name: "too many fields", desc: TypeDesc{Name: "t", NumFields: MaxFields + 1}, wantErr: true},
		{name: "ptr out of range", desc: TypeDesc{Name: "o", NumFields: 2, PtrFields: []int{2}}, wantErr: true},
		{name: "ptr duplicate", desc: TypeDesc{Name: "d", NumFields: 3, PtrFields: []int{1, 1}}, wantErr: true},
		{name: "ptr unordered", desc: TypeDesc{Name: "u", NumFields: 3, PtrFields: []int{2, 0}}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.desc.validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRegisterAndLookupType(t *testing.T) {
	h := testHeap(t)
	node, leaf := registerPair(t, h)
	if node == leaf {
		t.Fatalf("distinct types got the same id %d", node)
	}

	d, err := h.Type(node)
	if err != nil {
		t.Fatalf("Type(node): %v", err)
	}
	if d.Name != "node" || d.NumFields != 3 || len(d.PtrFields) != 2 {
		t.Errorf("unexpected descriptor %+v", d)
	}

	if _, err := h.Type(TypeID(99)); err == nil {
		t.Error("lookup of unregistered type succeeded")
	}
}

func TestRegisterTypeCopiesPtrFields(t *testing.T) {
	h := testHeap(t)
	fields := []int{0, 1}
	id := h.MustRegisterType(TypeDesc{Name: "x", NumFields: 2, PtrFields: fields})
	fields[0] = 1 // caller mutates its slice after registration

	d, err := h.Type(id)
	if err != nil {
		t.Fatalf("Type: %v", err)
	}
	if d.PtrFields[0] != 0 {
		t.Error("registered descriptor aliases the caller's slice")
	}
}

func TestCellLoadStoreCAS(t *testing.T) {
	h := testHeap(t)
	_, leaf := registerPair(t, h)
	r := h.MustAlloc(leaf)
	a := h.FieldAddr(r, 0)

	if got := h.Load(a); got != 0 {
		t.Fatalf("fresh field = %#x, want 0", got)
	}
	h.Store(a, 42)
	if got := h.Load(a); got != 42 {
		t.Fatalf("after Store, field = %d, want 42", got)
	}
	if h.CAS(a, 41, 43) {
		t.Fatal("CAS succeeded with wrong expected value")
	}
	if !h.CAS(a, 42, 43) {
		t.Fatal("CAS failed with right expected value")
	}
	if got := h.Load(a); got != 43 {
		t.Fatalf("after CAS, field = %d, want 43", got)
	}
}

func TestAddressHelpers(t *testing.T) {
	h := testHeap(t)
	node, _ := registerPair(t, h)
	r := h.MustAlloc(node)

	if got := h.RCAddr(r); got != r+1 {
		t.Errorf("RCAddr = %d, want %d", got, r+1)
	}
	if got := h.AuxAddr(r); got != r+2 {
		t.Errorf("AuxAddr = %d, want %d", got, r+2)
	}
	if got := h.FieldAddr(r, 2); got != r+HeaderWords+2 {
		t.Errorf("FieldAddr(2) = %d, want %d", got, r+HeaderWords+2)
	}
}

func TestNullAddressIsNeverAllocated(t *testing.T) {
	h := testHeap(t)
	_, leaf := registerPair(t, h)
	for i := 0; i < 100; i++ {
		r := h.MustAlloc(leaf)
		if r == 0 {
			t.Fatal("Alloc returned the null reference")
		}
		if r < firstAddr {
			t.Fatalf("Alloc returned reserved address %d", r)
		}
	}
}

func TestOutOfMemory(t *testing.T) {
	h := NewHeap(WithMaxWords(segWords)) // single segment
	big := h.MustRegisterType(TypeDesc{Name: "big", NumFields: MaxFields})

	var allocated []Ref
	for {
		r, err := h.Alloc(big)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("Alloc: unexpected error %v", err)
			}
			break
		}
		allocated = append(allocated, r)
	}
	if len(allocated) == 0 {
		t.Fatal("no allocations succeeded before exhaustion")
	}
	if got := h.Stats().AllocFailures; got == 0 {
		t.Error("AllocFailures not counted")
	}

	// Freeing makes room again.
	if err := h.Free(allocated[0]); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if _, err := h.Alloc(big); err != nil {
		t.Fatalf("Alloc after Free: %v", err)
	}
}

func TestAllocUnknownType(t *testing.T) {
	h := testHeap(t)
	if _, err := h.Alloc(TypeID(7)); err == nil {
		t.Error("Alloc of unregistered type succeeded")
	}
}

func TestInArena(t *testing.T) {
	h := testHeap(t)
	_, leaf := registerPair(t, h)
	if h.InArena(0) {
		t.Error("null address reported in arena")
	}
	r := h.MustAlloc(leaf)
	if !h.InArena(r) {
		t.Error("allocated object reported outside arena")
	}
	if h.InArena(Addr(h.next.Load() + 100)) {
		t.Error("uncarved address reported in arena")
	}
}
