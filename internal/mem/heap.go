package mem

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lfrc/internal/fault"
	"lfrc/internal/obs"
	"lfrc/internal/stripe"
)

const (
	segBits  = 16
	segWords = 1 << segBits
	segMask  = segWords - 1
	maxSegs  = 1024

	// firstAddr is where bump allocation starts; low addresses are
	// reserved so that 0 remains the null reference.
	firstAddr = 8
)

type segment [segWords]uint64

// Heap is the simulated shared heap. All methods are safe for concurrent use
// unless noted otherwise; cell accesses are individually atomic.
type Heap struct {
	segs  [maxSegs]atomic.Pointer[segment]
	next  atomic.Uint64 // bump pointer (word index); advances one slab at a time
	limit uint64        // arena size in words

	// shards stripe the allocator: per-shard free lists and bump chunks.
	// Goroutines are routed by stripe.Hint; see shard.go.
	shards []allocShard

	// global holds the overflow free lists shards migrate to and refill
	// from, one Treiber stack per object size; globalFree tracks their
	// total occupancy.
	global     [maxObjWords + 1]freeStack
	globalFree atomic.Int64

	typeMu    sync.Mutex
	typeCount atomic.Uint32
	types     [maxTypes]TypeDesc

	poisonCheck bool

	// obs is the optional flight recorder shared with the RC layer; nil
	// means disabled (every call on it is a single nil check).
	obs *obs.Recorder

	// fj is the optional fault injector shared with the RC layer; nil
	// means disabled. Alloc consults it to force exhaustion (fault.MemAlloc)
	// or the allocator slow path (fault.MemAllocSlow).
	fj *fault.Injector

	// stats is striped in lockstep with shards (stats[i] counts work
	// routed to shards[i]); highWater is global but updated only once per
	// slab claim.
	stats     []statStripe
	highWater atomic.Int64

	// epoch is the reclamation epoch: a coarse logical clock advanced by
	// the lifecycle auditor (one tick per audit pass). Alloc and Free
	// stamp their flight events with it so a timeline shows *when*, in
	// audit time, a slot was carved, freed, or reused.
	epoch atomic.Uint64
}

// Option configures a Heap.
type Option func(*heapConfig)

type heapConfig struct {
	maxWords    uint64
	poisonCheck bool

	// obs is the optional flight recorder shared with the RC layer; nil
	// means disabled (every call on it is a single nil check).
	obs         *obs.Recorder
	allocShards int
	fj          *fault.Injector
}

// WithMaxWords caps the arena at n 64-bit words. The default is 64Mi words
// (512 MiB of simulated memory).
func WithMaxWords(n uint64) Option {
	return func(c *heapConfig) { c.maxWords = n }
}

// WithPoisonCheck enables or disables verification, at allocation time, that
// a recycled slot's poison pattern is intact. It is enabled by default; the
// check is how experiment E1 observes use-after-free corruption.
func WithPoisonCheck(on bool) Option {
	return func(c *heapConfig) { c.poisonCheck = on }
}

// WithAllocShards sets the number of allocation shards — per-shard free
// lists and bump chunks — the heap stripes its allocator across. The default
// is runtime.GOMAXPROCS(0); values are clamped to [1, 64]. Pin it explicitly
// for reproducible benchmarks.
func WithAllocShards(n int) Option {
	return func(c *heapConfig) { c.allocShards = n }
}

// WithObserver attaches a flight recorder: allocator events (alloc, free,
// cross-shard steals) are sampled into it, and poison-corruption detection
// captures a postmortem of the trailing events that touched the damaged slot.
// A nil recorder leaves observation disabled.
func WithObserver(r *obs.Recorder) Option {
	return func(c *heapConfig) { c.obs = r }
}

// WithFault attaches a fault injector: Alloc consults it at the declared
// mem.alloc (forced ErrOutOfMemory) and mem.alloc.slow (forced allocator
// slow path) injection points. A nil injector leaves injection disabled.
func WithFault(in *fault.Injector) Option {
	return func(c *heapConfig) { c.fj = in }
}

// NewHeap creates an empty heap.
func NewHeap(opts ...Option) *Heap {
	cfg := heapConfig{
		maxWords:    64 << 20,
		poisonCheck: true,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxWords > uint64(maxSegs)*segWords {
		cfg.maxWords = uint64(maxSegs) * segWords
	}
	if cfg.maxWords < segWords {
		cfg.maxWords = segWords
	}
	shards := stripe.Clamp(cfg.allocShards, runtime.GOMAXPROCS(0))
	h := &Heap{
		limit:       cfg.maxWords,
		poisonCheck: cfg.poisonCheck,
		obs:         cfg.obs,
		fj:          cfg.fj,
		shards:      make([]allocShard, shards),
		stats:       make([]statStripe, shards),
	}
	h.next.Store(firstAddr)
	h.ensureSegment(0)
	return h
}

// Shards reports the number of allocation shards the heap was built with.
func (h *Heap) Shards() int { return len(h.shards) }

// Epoch returns the current reclamation epoch (see AdvanceEpoch).
func (h *Heap) Epoch() uint64 { return h.epoch.Load() }

// AdvanceEpoch ticks the reclamation epoch and returns the new value. The
// lifecycle auditor calls it once per audit pass; allocator flight events are
// stamped with the epoch they happened in.
func (h *Heap) AdvanceEpoch() uint64 { return h.epoch.Add(1) }

// shardIndex routes the calling goroutine to an allocation shard (and its
// stat stripe). A locality hint only: any goroutine may touch any shard.
func (h *Heap) shardIndex() int { return stripe.Hint(len(h.shards)) }

// ensureSegment lazily installs the backing array for segment i.
func (h *Heap) ensureSegment(i uint32) *segment {
	if s := h.segs[i].Load(); s != nil {
		return s
	}
	s := new(segment)
	if h.segs[i].CompareAndSwap(nil, s) {
		return s
	}
	return h.segs[i].Load()
}

// cell returns the storage cell for address a. The address must lie within
// the allocated arena.
func (h *Heap) cell(a Addr) *uint64 {
	seg := h.segs[uint32(a)>>segBits].Load()
	if seg == nil {
		panic(fmt.Sprintf("mem: access to unmapped address %#x", a))
	}
	return &seg[uint32(a)&segMask]
}

// Load atomically reads the cell at a.
func (h *Heap) Load(a Addr) uint64 {
	return atomic.LoadUint64(h.cell(a))
}

// Store atomically writes v into the cell at a.
func (h *Heap) Store(a Addr, v uint64) {
	atomic.StoreUint64(h.cell(a), v)
}

// CAS atomically compares-and-swaps the cell at a.
func (h *Heap) CAS(a Addr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(h.cell(a), old, new)
}

// RCAddr returns the address of an object's reference-count cell.
func (h *Heap) RCAddr(r Ref) Addr { return r + 1 }

// AuxAddr returns the address of an object's aux cell (free-list link while
// the object is freed; available to reclamation machinery while it is live).
func (h *Heap) AuxAddr(r Ref) Addr { return r + 2 }

// FieldAddr returns the address of payload field i of object r. It does not
// validate i against the object's type; callers index within the TypeDesc
// they registered.
func (h *Heap) FieldAddr(r Ref, i int) Addr { return r + HeaderWords + Addr(i) }

// RegisterType adds a type descriptor and returns its TypeID. Registration
// is serialized and must complete before the heap is used concurrently with
// the new type; lookups by running threads never block.
func (h *Heap) RegisterType(d TypeDesc) (TypeID, error) {
	if err := d.validate(); err != nil {
		return 0, err
	}
	h.typeMu.Lock()
	defer h.typeMu.Unlock()
	n := h.typeCount.Load()
	if n >= maxTypes {
		return 0, ErrTooManyTypes
	}
	d.PtrFields = append([]int(nil), d.PtrFields...)
	h.types[n] = d
	h.typeCount.Store(n + 1)
	return TypeID(n), nil
}

// MustRegisterType is RegisterType for static setup code; it panics on error.
func (h *Heap) MustRegisterType(d TypeDesc) TypeID {
	t, err := h.RegisterType(d)
	if err != nil {
		panic(err)
	}
	return t
}

// Type returns the descriptor for id. The returned descriptor shares the
// registered PtrFields slice; callers must not modify it.
func (h *Heap) Type(id TypeID) (TypeDesc, error) {
	if uint32(id) >= h.typeCount.Load() {
		return TypeDesc{}, fmt.Errorf("%w: unknown type id %d", ErrBadType, id)
	}
	return h.types[id], nil
}

// typeOf is the fast internal lookup; the id comes from a header we wrote.
func (h *Heap) typeOf(id TypeID) *TypeDesc { return &h.types[id] }

// Header introspection -------------------------------------------------------

// SizeOf returns the total size in words of the object at r.
func (h *Heap) SizeOf(r Ref) int { return headerSize(h.Load(r)) }

// TypeOf returns the TypeID of the object at r.
func (h *Heap) TypeOf(r Ref) TypeID { return headerType(h.Load(r)) }

// IsFreed reports whether the object at r currently has its freed bit set.
func (h *Heap) IsFreed(r Ref) bool { return headerFreed(h.Load(r)) }

// Generation returns the allocation generation of the slot at r. It
// increments every time the slot is reallocated, which lets diagnostics
// detect stale references.
func (h *Heap) Generation(r Ref) uint32 { return headerGen(h.Load(r)) }

// InArena reports whether a names a word inside the currently carved arena.
func (h *Heap) InArena(a Addr) bool {
	return a >= firstAddr && uint64(a) < h.next.Load()
}

// Walk visits every object slot ever carved from the arena, live or freed,
// in address order, until fn returns false. The heap must be quiescent (no
// concurrent allocation) for the traversal to be coherent; it exists for the
// stop-the-world tracing collector and the invariant auditors.
//
// Words below the global cursor that hold no object — unfilled shard-chunk
// tails, remainders abandoned on refill, slivers skipped at segment
// boundaries — were never written and still read zero, whose size field is
// invalid; Walk steps over them word by word.
func (h *Heap) Walk(fn func(r Ref, freed bool) bool) {
	end := h.next.Load()
	for a := uint64(firstAddr); a < end; {
		hdr := h.Load(Addr(a))
		size := headerSize(hdr)
		if size < HeaderWords || size > maxObjWords {
			a++
			continue
		}
		if !fn(Ref(a), headerFreed(hdr)) {
			return
		}
		a += uint64(size)
	}
}

// Block is one object slot as decoded from a single atomic header read. All
// fields describe the same instant: a block observed live here cannot have
// been half-freed between separate TypeOf/IsFreed calls, which matters to
// observers (the heap census) that walk while mutators run.
type Block struct {
	Ref   Ref
	Type  TypeID
	Size  int // total words, header included
	Freed bool
	Gen   uint32
}

// WalkBlocks visits every object slot ever carved from the arena, live or
// freed, in address order, until fn returns false. Unlike Walk it decodes the
// whole header once per slot and hands the caller a self-consistent Block.
// It tolerates concurrent mutation the same way Walk does: each header is one
// atomic load, and non-object words below the cursor are stepped over.
func (h *Heap) WalkBlocks(fn func(b Block) bool) {
	end := h.next.Load()
	for a := uint64(firstAddr); a < end; {
		hdr := h.Load(Addr(a))
		size := headerSize(hdr)
		if size < HeaderWords || size > maxObjWords {
			a++
			continue
		}
		b := Block{
			Ref:   Ref(a),
			Type:  headerType(hdr),
			Size:  size,
			Freed: headerFreed(hdr),
			Gen:   headerGen(hdr),
		}
		if !fn(b) {
			return
		}
		a += uint64(size)
	}
}
