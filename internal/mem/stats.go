package mem

import "sync/atomic"

// statStripe is one stripe of heap accounting, padded to a cache line so
// stripes on different shards never false-share. Heap.stats holds one stripe
// per allocation shard; snapshots sum across stripes.
type statStripe struct {
	allocs        atomic.Int64
	frees         atomic.Int64
	recycles      atomic.Int64
	liveObjects   atomic.Int64
	liveWords     atomic.Int64
	doubleFrees   atomic.Int64
	corruptions   atomic.Int64
	allocFailures atomic.Int64
	_             [64]byte
}

// Stats is a point-in-time snapshot of heap accounting. Individual counters
// are read atomically but the snapshot as a whole is not; take it at
// quiescence when exact cross-counter invariants matter.
type Stats struct {
	// Allocs and Frees count successful Alloc and Free calls.
	Allocs, Frees int64

	// Recycles counts Allocs satisfied from a free list rather than by
	// carving new arena words.
	Recycles int64

	// LiveObjects and LiveWords describe currently allocated storage.
	// LiveWords is the metric experiment E3 plots: it grows and shrinks
	// with the data structure, unlike a type-stable free-list scheme's
	// footprint.
	LiveObjects, LiveWords int64

	// HighWater is the largest arena extent ever carved, in words. Slabs
	// are claimed whole, so it rounds up to the last slab boundary.
	HighWater int64

	// DoubleFrees counts Free calls on already-freed objects.
	DoubleFrees int64

	// Corruptions counts recycled slots whose poison pattern had been
	// overwritten — evidence that some thread wrote to freed memory.
	Corruptions int64

	// AllocFailures counts Allocs that returned ErrOutOfMemory.
	AllocFailures int64
}

// Stats returns a snapshot of the heap's counters, summed across stripes.
func (h *Heap) Stats() Stats {
	var s Stats
	for i := range h.stats {
		st := &h.stats[i]
		s.Allocs += st.allocs.Load()
		s.Frees += st.frees.Load()
		s.Recycles += st.recycles.Load()
		s.LiveObjects += st.liveObjects.Load()
		s.LiveWords += st.liveWords.Load()
		s.DoubleFrees += st.doubleFrees.Load()
		s.Corruptions += st.corruptions.Load()
		s.AllocFailures += st.allocFailures.Load()
	}
	s.HighWater = h.highWater.Load()
	return s
}

// ShardStats describes one allocation shard's activity and current holdings.
type ShardStats struct {
	// Allocs, Frees and Recycles count operations routed to this shard.
	Allocs, Frees, Recycles int64

	// FreeListed is the approximate number of freed slots currently parked
	// on the shard's local free lists, across all size classes.
	FreeListed int64

	// ChunkFree is the number of unfilled words left in the shard's
	// current bump chunk.
	ChunkFree int64
}

// AllocStats describes the sharded allocator's configuration and per-shard
// state. Like Stats it is a racy snapshot; take it at quiescence when exact
// numbers matter.
type AllocStats struct {
	// Shards is the configured shard count.
	Shards int

	// FillTarget is the per-shard, per-size free-list fill target; shards
	// overflow to the global list at twice this occupancy.
	FillTarget int

	// GlobalFreeListed is the number of freed slots currently parked on
	// the heap's global overflow lists.
	GlobalFreeListed int64

	// PerShard holds one entry per shard, in shard order.
	PerShard []ShardStats
}

// GlobalFreeListed reports the number of freed slots currently parked on the
// heap's global overflow lists. Unlike AllocStats it allocates nothing; the
// timeline capture path reads it every interval.
func (h *Heap) GlobalFreeListed() int64 {
	return h.globalFree.Load()
}

// ShardAllocsInto fills dst[i] with shard i's cumulative allocation count for
// i < min(len(dst), shards) and returns the configured shard count. It is the
// allocation-free slice of AllocStats the timeline capture path uses.
func (h *Heap) ShardAllocsInto(dst []int64) int {
	n := len(h.shards)
	for i := 0; i < n && i < len(dst); i++ {
		dst[i] = h.stats[i].allocs.Load()
	}
	return n
}

// AllocStats returns a snapshot of the sharded allocator's state.
func (h *Heap) AllocStats() AllocStats {
	a := AllocStats{
		Shards:           len(h.shards),
		FillTarget:       shardFillTarget,
		GlobalFreeListed: h.globalFree.Load(),
		PerShard:         make([]ShardStats, len(h.shards)),
	}
	for i := range h.shards {
		sh := &h.shards[i]
		st := &h.stats[i]
		var listed int64
		for size := range sh.counts {
			if n := sh.counts[size].Load(); n > 0 {
				listed += int64(n)
			}
		}
		ce := sh.chunk.Load()
		a.PerShard[i] = ShardStats{
			Allocs:     st.allocs.Load(),
			Frees:      st.frees.Load(),
			Recycles:   st.recycles.Load(),
			FreeListed: listed,
			ChunkFree:  int64(ce>>32) - int64(ce&0xFFFF_FFFF),
		}
	}
	return a
}
