package mem

import "sync/atomic"

// statCounters holds the heap's atomic accounting.
type statCounters struct {
	allocs        atomic.Int64
	frees         atomic.Int64
	recycles      atomic.Int64
	liveObjects   atomic.Int64
	liveWords     atomic.Int64
	highWater     atomic.Int64
	doubleFrees   atomic.Int64
	corruptions   atomic.Int64
	allocFailures atomic.Int64
}

// Stats is a point-in-time snapshot of heap accounting. Individual counters
// are read atomically but the snapshot as a whole is not; take it at
// quiescence when exact cross-counter invariants matter.
type Stats struct {
	// Allocs and Frees count successful Alloc and Free calls.
	Allocs, Frees int64

	// Recycles counts Allocs satisfied from a free list rather than by
	// carving new arena words.
	Recycles int64

	// LiveObjects and LiveWords describe currently allocated storage.
	// LiveWords is the metric experiment E3 plots: it grows and shrinks
	// with the data structure, unlike a type-stable free-list scheme's
	// footprint.
	LiveObjects, LiveWords int64

	// HighWater is the largest arena extent ever carved, in words.
	HighWater int64

	// DoubleFrees counts Free calls on already-freed objects.
	DoubleFrees int64

	// Corruptions counts recycled slots whose poison pattern had been
	// overwritten — evidence that some thread wrote to freed memory.
	Corruptions int64

	// AllocFailures counts Allocs that returned ErrOutOfMemory.
	AllocFailures int64
}

// Stats returns a snapshot of the heap's counters.
func (h *Heap) Stats() Stats {
	return Stats{
		Allocs:        h.stats.allocs.Load(),
		Frees:         h.stats.frees.Load(),
		Recycles:      h.stats.recycles.Load(),
		LiveObjects:   h.stats.liveObjects.Load(),
		LiveWords:     h.stats.liveWords.Load(),
		HighWater:     h.stats.highWater.Load(),
		DoubleFrees:   h.stats.doubleFrees.Load(),
		Corruptions:   h.stats.corruptions.Load(),
		AllocFailures: h.stats.allocFailures.Load(),
	}
}
