package mem

import (
	"errors"
	"testing"
)

func TestAllocInitialState(t *testing.T) {
	h := testHeap(t)
	node, _ := registerPair(t, h)
	r := h.MustAlloc(node)

	if h.IsFreed(r) {
		t.Error("fresh object marked freed")
	}
	if got := h.TypeOf(r); got != node {
		t.Errorf("TypeOf = %d, want %d", got, node)
	}
	if got := h.SizeOf(r); got != HeaderWords+3 {
		t.Errorf("SizeOf = %d, want %d", got, HeaderWords+3)
	}
	if got := h.Load(h.RCAddr(r)); got != 1 {
		t.Errorf("fresh rc = %d, want 1", got)
	}
	if got := h.Load(h.AuxAddr(r)); got != 0 {
		t.Errorf("fresh aux = %d, want 0", got)
	}
	for i := 0; i < 3; i++ {
		if got := h.Load(h.FieldAddr(r, i)); got != 0 {
			t.Errorf("fresh field %d = %#x, want 0 (null)", i, got)
		}
	}
	if got := h.Generation(r); got != 1 {
		t.Errorf("fresh generation = %d, want 1", got)
	}
}

func TestFreePoisonsSlot(t *testing.T) {
	h := testHeap(t)
	node, _ := registerPair(t, h)
	r := h.MustAlloc(node)
	size := h.SizeOf(r)

	if err := h.Free(r); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if !h.IsFreed(r) {
		t.Fatal("freed bit not set")
	}
	if got := h.Load(h.RCAddr(r)); got != Poison {
		t.Errorf("freed rc cell = %#x, want poison", got)
	}
	for a := r + HeaderWords; a < r+Addr(size); a++ {
		if got := h.Load(a); got != Poison {
			t.Errorf("freed payload cell %d = %#x, want poison", a-r, got)
		}
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	h := testHeap(t)
	node, _ := registerPair(t, h)
	r := h.MustAlloc(node)

	if err := h.Free(r); err != nil {
		t.Fatalf("first Free: %v", err)
	}
	if err := h.Free(r); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("second Free error = %v, want ErrDoubleFree", err)
	}
	if got := h.Stats().DoubleFrees; got != 1 {
		t.Errorf("DoubleFrees = %d, want 1", got)
	}
}

func TestFreeBadRef(t *testing.T) {
	h := testHeap(t)
	registerPair(t, h)
	tests := []struct {
		name string
		ref  Ref
	}{
		{name: "null", ref: 0},
		{name: "reserved", ref: firstAddr - 1},
		{name: "uncarved", ref: Addr(h.next.Load()) + 1000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := h.Free(tt.ref); !errors.Is(err, ErrBadRef) {
				t.Errorf("Free(%#x) error = %v, want ErrBadRef", tt.ref, err)
			}
		})
	}
}

func TestRecycleBumpsGeneration(t *testing.T) {
	h := testHeap(t)
	node, _ := registerPair(t, h)

	r1 := h.MustAlloc(node)
	if err := h.Free(r1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	r2 := h.MustAlloc(node)
	if r2 != r1 {
		t.Fatalf("free-listed slot not recycled: got %d, had %d", r2, r1)
	}
	if got := h.Generation(r2); got != 2 {
		t.Errorf("recycled generation = %d, want 2", got)
	}
	if got := h.Stats().Recycles; got != 1 {
		t.Errorf("Recycles = %d, want 1", got)
	}
}

func TestRecycleSharesSizeClassAcrossTypes(t *testing.T) {
	h := testHeap(t)
	// Two types with the same total size: a freed slot of one must be
	// reusable by the other. This is the paper's contrast with type-stable
	// free lists (Valois), whose storage "cannot in general be reused for
	// other purposes".
	a := h.MustRegisterType(TypeDesc{Name: "a", NumFields: 2, PtrFields: []int{0}})
	b := h.MustRegisterType(TypeDesc{Name: "b", NumFields: 2})

	r1 := h.MustAlloc(a)
	if err := h.Free(r1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	r2 := h.MustAlloc(b)
	if r2 != r1 {
		t.Fatalf("slot not shared across same-size types: got %d, had %d", r2, r1)
	}
	if got := h.TypeOf(r2); got != b {
		t.Errorf("recycled slot type = %d, want %d", got, b)
	}
}

func TestDistinctSizeClassesDoNotShare(t *testing.T) {
	h := testHeap(t)
	small := h.MustRegisterType(TypeDesc{Name: "small", NumFields: 1})
	large := h.MustRegisterType(TypeDesc{Name: "large", NumFields: 8})

	r1 := h.MustAlloc(small)
	if err := h.Free(r1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	r2 := h.MustAlloc(large)
	if r2 == r1 {
		t.Fatal("large allocation recycled a small slot")
	}
}

func TestUseAfterFreeCorruptionDetected(t *testing.T) {
	h := testHeap(t)
	node, _ := registerPair(t, h)
	r := h.MustAlloc(node)
	rc := h.RCAddr(r)

	if err := h.Free(r); err != nil {
		t.Fatalf("Free: %v", err)
	}
	// A stale thread increments the rc of a freed object — the failure
	// mode the paper's §5 discussion of CAS-only counting describes.
	h.Store(rc, Poison+1)

	r2 := h.MustAlloc(node)
	if r2 != r {
		t.Fatalf("expected slot reuse, got %d, had %d", r2, r)
	}
	if got := h.Stats().Corruptions; got != 1 {
		t.Errorf("Corruptions = %d, want 1", got)
	}
	// The slot must have been repaired by reinitialization.
	if got := h.Load(rc); got != 1 {
		t.Errorf("recycled rc = %#x, want 1", got)
	}
}

func TestPoisonCheckDisabled(t *testing.T) {
	h := NewHeap(WithPoisonCheck(false))
	node := h.MustRegisterType(TypeDesc{Name: "node", NumFields: 1})
	r := h.MustAlloc(node)
	if err := h.Free(r); err != nil {
		t.Fatalf("Free: %v", err)
	}
	h.Store(h.RCAddr(r), 12345)
	h.MustAlloc(node)
	if got := h.Stats().Corruptions; got != 0 {
		t.Errorf("Corruptions = %d with poison check disabled, want 0", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	h := testHeap(t)
	node, leaf := registerPair(t, h)

	refs := make([]Ref, 0, 10)
	for i := 0; i < 6; i++ {
		refs = append(refs, h.MustAlloc(node))
	}
	for i := 0; i < 4; i++ {
		refs = append(refs, h.MustAlloc(leaf))
	}
	s := h.Stats()
	if s.Allocs != 10 || s.LiveObjects != 10 {
		t.Errorf("after allocs: Allocs=%d LiveObjects=%d, want 10/10", s.Allocs, s.LiveObjects)
	}
	wantWords := int64(6*(HeaderWords+3) + 4*(HeaderWords+1))
	if s.LiveWords != wantWords {
		t.Errorf("LiveWords = %d, want %d", s.LiveWords, wantWords)
	}

	for _, r := range refs {
		if err := h.Free(r); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	s = h.Stats()
	if s.Frees != 10 || s.LiveObjects != 0 || s.LiveWords != 0 {
		t.Errorf("after frees: Frees=%d LiveObjects=%d LiveWords=%d, want 10/0/0",
			s.Frees, s.LiveObjects, s.LiveWords)
	}
	if s.HighWater == 0 {
		t.Error("HighWater not recorded")
	}
}

func TestBumpSkipsSegmentBoundary(t *testing.T) {
	h := NewHeap(WithMaxWords(4 * segWords))
	big := h.MustRegisterType(TypeDesc{Name: "big", NumFields: MaxFields})

	var prevEnd uint64
	seen := map[uint32]bool{}
	for {
		r, err := h.Alloc(big)
		if err != nil {
			break
		}
		start := uint64(r)
		end := start + uint64(HeaderWords+MaxFields)
		if start>>segBits != (end-1)>>segBits {
			t.Fatalf("object [%d,%d) straddles a segment boundary", start, end)
		}
		if start < prevEnd {
			t.Fatalf("bump went backwards: start %d < previous end %d", start, prevEnd)
		}
		prevEnd = end
		seen[uint32(start>>segBits)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("test did not cross segments (saw %d segments)", len(seen))
	}
}

func TestWalkVisitsEveryObject(t *testing.T) {
	h := NewHeap(WithMaxWords(4 * segWords))
	node, leaf := registerPair(t, h)

	want := map[Ref]bool{} // ref -> freed
	for i := 0; i < 500; i++ {
		typ := node
		if i%3 == 0 {
			typ = leaf
		}
		r := h.MustAlloc(typ)
		want[r] = false
		if i%5 == 0 {
			if err := h.Free(r); err != nil {
				t.Fatalf("Free: %v", err)
			}
			want[r] = true
		}
	}
	// Reallocate some freed slots so Walk sees recycled objects too.
	for i := 0; i < 20; i++ {
		r := h.MustAlloc(node)
		want[r] = false
	}

	got := map[Ref]bool{}
	h.Walk(func(r Ref, freed bool) bool {
		if _, dup := got[r]; dup {
			t.Fatalf("Walk visited %d twice", r)
		}
		got[r] = freed
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Walk visited %d slots, want %d", len(got), len(want))
	}
	for r, freed := range want {
		if got[r] != freed {
			t.Errorf("slot %d freed = %v, want %v", r, got[r], freed)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	h := testHeap(t)
	_, leaf := registerPair(t, h)
	for i := 0; i < 10; i++ {
		h.MustAlloc(leaf)
	}
	n := 0
	h.Walk(func(Ref, bool) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("Walk visited %d slots after early stop, want 3", n)
	}
}

func TestWalkAcrossSegments(t *testing.T) {
	h := NewHeap(WithMaxWords(4 * segWords))
	big := h.MustRegisterType(TypeDesc{Name: "big", NumFields: MaxFields})
	n := 0
	for {
		if _, err := h.Alloc(big); err != nil {
			break
		}
		n++
	}
	visited := 0
	h.Walk(func(Ref, bool) bool {
		visited++
		return true
	})
	if visited != n {
		t.Errorf("Walk visited %d objects across segments, want %d", visited, n)
	}
}
