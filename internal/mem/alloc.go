package mem

import (
	"fmt"

	"lfrc/internal/fault"
	"lfrc/internal/obs"
)

// Alloc carves or recycles a slot for an object of type t. The new object
// has reference count 1 (the reference returned to the caller, mirroring the
// paper's convention that a constructor counts the pointer returned by new),
// null pointer fields, and zeroed scalar fields.
//
// Alloc recycles before it carves: it tries the calling goroutine's shard
// free list for the type's size class, then the global overflow list (refilling
// the shard with a batch), then sibling shards, and only then bumps the
// shard's chunk — claiming a fresh slab from the arena when the chunk is
// spent. When recycling, it verifies that the slot's poison pattern is
// intact; a damaged pattern means some thread wrote to freed memory, and is
// recorded in Stats().Corruptions.
func (h *Heap) Alloc(t TypeID) (Ref, error) {
	if uint32(t) >= h.typeCount.Load() {
		return 0, fmt.Errorf("%w: unknown type id %d", ErrBadType, t)
	}
	d := h.typeOf(t)
	size := d.size()

	t0 := h.obs.Sample()
	idx := h.shardIndex()
	sh := &h.shards[idx]
	st := &h.stats[idx]

	// Injected exhaustion takes the same accounting path a real one does,
	// so degraded-mode policies above see an indistinguishable failure.
	if h.fj.Inject(fault.MemAlloc) {
		st.allocFailures.Add(1)
		return 0, fmt.Errorf("%w (injected)", ErrOutOfMemory)
	}

	var r Ref
	recycled := false
	if !h.fj.Inject(fault.MemAllocSlow) {
		r, recycled = sh.popLocal(h, size)
	}
	if !recycled {
		r, recycled = h.popGlobal(sh, size)
	}
	stolen := false
	if !recycled {
		r, recycled = h.stealFree(idx, size)
		stolen = recycled
	}
	if !recycled {
		var err error
		r, err = h.shardBump(sh, size)
		if err != nil {
			st.allocFailures.Add(1)
			return 0, err
		}
	}

	gen := uint32(1)
	if recycled {
		st.recycles.Add(1)
		old := h.Load(r)
		gen = headerGen(old) + 1
		if h.poisonCheck {
			h.checkPoison(r, size, st)
		}
	}

	// Initialize payload (null refs / zero scalars), then rc, then the
	// header last so the freed bit clears only once the slot is sound.
	for i := 0; i < d.NumFields; i++ {
		h.Store(h.FieldAddr(r, i), 0)
	}
	h.Store(h.AuxAddr(r), 0)
	h.Store(h.RCAddr(r), 1)
	h.Store(r, packHeader(size, t, false, gen))

	st.allocs.Add(1)
	st.liveObjects.Add(1)
	st.liveWords.Add(int64(size))
	if stolen {
		h.obs.Note(obs.KindSteal, uint32(r), 0)
	}
	// Old carries the slot generation, New the reclamation epoch, so a
	// lifecycle timeline distinguishes a fresh carve (gen 1) from a reuse
	// and places both in audit time.
	h.obs.RecordT(t0, obs.KindAlloc, uint32(r), 0, recycled, 0, gen, uint32(h.epoch.Load()))
	return r, nil
}

// MustAlloc is Alloc for code paths where exhaustion is fatal (tests,
// examples); it panics on error.
func (h *Heap) MustAlloc(t TypeID) Ref {
	r, err := h.Alloc(t)
	if err != nil {
		panic(err)
	}
	return r
}

// Free returns the object at r to the calling goroutine's shard free list.
// The rc cell and payload cells are poisoned, and the freed bit is set with
// CAS so a concurrent double free is detected rather than corrupting the
// free list.
//
// Free does not consult or require a zero reference count: that policy
// belongs to package core (LFRCDestroy). Freeing an object that other
// threads still reference will surface as poison corruption — which is the
// behaviour the paper's methodology exists to prevent.
func (h *Heap) Free(r Ref) error {
	t0 := h.obs.Sample()
	idx := h.shardIndex()
	st := &h.stats[idx]

	if r == 0 || !h.InArena(r) {
		return fmt.Errorf("%w: %#x", ErrBadRef, r)
	}
	for {
		hdr := h.Load(r)
		size := headerSize(hdr)
		if size < HeaderWords || size > maxObjWords {
			return fmt.Errorf("%w: %#x has no object header", ErrBadRef, r)
		}
		if headerFreed(hdr) {
			st.doubleFrees.Add(1)
			// OK=false marks the free as rejected: the lifecycle
			// auditor reads this as a double-free signal.
			h.obs.RecordT(t0, obs.KindFree, uint32(r), 0, false, 0,
				headerGen(hdr), uint32(h.epoch.Load()))
			return ErrDoubleFree
		}
		if h.CAS(r, hdr, hdr|hdrFreedBit) {
			break
		}
	}

	hdr := h.Load(r)
	size := headerSize(hdr)
	gen := headerGen(hdr)
	h.Store(h.RCAddr(r), Poison)
	for a := r + HeaderWords; a < r+Addr(size); a++ {
		h.Store(a, Poison)
	}

	st.frees.Add(1)
	st.liveObjects.Add(-1)
	st.liveWords.Add(-int64(size))
	// Record before pushLocal publishes the slot: once it is on a free
	// list a sibling may recycle it and rewrite the header.
	h.obs.RecordT(t0, obs.KindFree, uint32(r), 0, true, 0,
		gen, uint32(h.epoch.Load()))
	h.shards[idx].pushLocal(h, r, size)
	return nil
}

// checkPoison verifies a recycled slot's poison words and repairs any damage
// so corruption is counted once, not compounded.
func (h *Heap) checkPoison(r Ref, size int, st *statStripe) {
	damaged := false
	if h.Load(h.RCAddr(r)) != Poison {
		damaged = true
	}
	for a := r + HeaderWords; a < r+Addr(size); a++ {
		if h.Load(a) != Poison {
			damaged = true
		}
	}
	if damaged {
		st.corruptions.Add(1)
		h.obs.CapturePostmortem("poison corruption on recycled slot", uint32(r))
	}
}
