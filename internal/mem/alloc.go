package mem

import "fmt"

// Alloc carves or recycles a slot for an object of type t. The new object
// has reference count 1 (the reference returned to the caller, mirroring the
// paper's convention that a constructor counts the pointer returned by new),
// null pointer fields, and zeroed scalar fields.
//
// Alloc first tries the lock-free free list for the type's size class and
// falls back to bump allocation. When recycling, it verifies that the slot's
// poison pattern is intact; a damaged pattern means some thread wrote to
// freed memory, and is recorded in Stats().Corruptions.
func (h *Heap) Alloc(t TypeID) (Ref, error) {
	if uint32(t) >= h.typeCount.Load() {
		return 0, fmt.Errorf("%w: unknown type id %d", ErrBadType, t)
	}
	d := h.typeOf(t)
	size := d.size()

	r, recycled := h.popFree(size)
	if !recycled {
		var err error
		r, err = h.bump(size)
		if err != nil {
			return 0, err
		}
	}

	gen := uint32(1)
	if recycled {
		old := h.Load(r)
		gen = headerGen(old) + 1
		if h.poisonCheck {
			h.checkPoison(r, size)
		}
	}

	// Initialize payload (null refs / zero scalars), then rc, then the
	// header last so the freed bit clears only once the slot is sound.
	for i := 0; i < d.NumFields; i++ {
		h.Store(h.FieldAddr(r, i), 0)
	}
	h.Store(h.AuxAddr(r), 0)
	h.Store(h.RCAddr(r), 1)
	h.Store(r, packHeader(size, t, false, gen))

	h.stats.allocs.Add(1)
	h.stats.liveObjects.Add(1)
	h.stats.liveWords.Add(int64(size))
	return r, nil
}

// MustAlloc is Alloc for code paths where exhaustion is fatal (tests,
// examples); it panics on error.
func (h *Heap) MustAlloc(t TypeID) Ref {
	r, err := h.Alloc(t)
	if err != nil {
		panic(err)
	}
	return r
}

// Free returns the object at r to its size class's free list. The rc cell
// and payload cells are poisoned, and the freed bit is set with CAS so a
// concurrent double free is detected rather than corrupting the free list.
//
// Free does not consult or require a zero reference count: that policy
// belongs to package core (LFRCDestroy). Freeing an object that other
// threads still reference will surface as poison corruption — which is the
// behaviour the paper's methodology exists to prevent.
func (h *Heap) Free(r Ref) error {
	if r == 0 || !h.InArena(r) {
		return fmt.Errorf("%w: %#x", ErrBadRef, r)
	}
	for {
		hdr := h.Load(r)
		size := headerSize(hdr)
		if size < HeaderWords || size > maxObjWords {
			return fmt.Errorf("%w: %#x has no object header", ErrBadRef, r)
		}
		if headerFreed(hdr) {
			h.stats.doubleFrees.Add(1)
			return ErrDoubleFree
		}
		if h.CAS(r, hdr, hdr|hdrFreedBit) {
			break
		}
	}

	size := headerSize(h.Load(r))
	h.Store(h.RCAddr(r), Poison)
	for a := r + HeaderWords; a < r+Addr(size); a++ {
		h.Store(a, Poison)
	}

	h.stats.frees.Add(1)
	h.stats.liveObjects.Add(-1)
	h.stats.liveWords.Add(-int64(size))
	h.pushFree(r, size)
	return nil
}

// checkPoison verifies a recycled slot's poison words and repairs any damage
// so corruption is counted once, not compounded.
func (h *Heap) checkPoison(r Ref, size int) {
	damaged := false
	if h.Load(h.RCAddr(r)) != Poison {
		damaged = true
	}
	for a := r + HeaderWords; a < r+Addr(size); a++ {
		if h.Load(a) != Poison {
			damaged = true
		}
	}
	if damaged {
		h.stats.corruptions.Add(1)
	}
}

// pushFree links the freed slot into the Treiber stack for its size class.
// The slot's aux word holds the next link; the stack head packs a pop
// counter in its high 32 bits to defeat ABA.
func (h *Heap) pushFree(r Ref, size int) {
	head := &h.freeLists[size]
	for {
		old := head.Load()
		h.Store(h.AuxAddr(r), uint64(old&0xFFFF_FFFF))
		if head.CompareAndSwap(old, old&^uint64(0xFFFF_FFFF)|uint64(r)) {
			return
		}
	}
}

// popFree pops a slot from the size class's free list.
func (h *Heap) popFree(size int) (Ref, bool) {
	head := &h.freeLists[size]
	for {
		old := head.Load()
		r := Ref(old & 0xFFFF_FFFF)
		if r == 0 {
			return 0, false
		}
		next := h.Load(h.AuxAddr(r)) & 0xFFFF_FFFF
		cnt := (old >> 32) + 1
		if head.CompareAndSwap(old, cnt<<32|next) {
			h.stats.recycles.Add(1)
			return r, true
		}
	}
}

// bump carves size words from the arena, never splitting an object across a
// segment boundary.
func (h *Heap) bump(size int) (Ref, error) {
	for {
		n := h.next.Load()
		start := n
		if start>>segBits != (start+uint64(size)-1)>>segBits {
			start = (start>>segBits + 1) << segBits
		}
		end := start + uint64(size)
		if end > h.limit {
			h.stats.allocFailures.Add(1)
			return 0, ErrOutOfMemory
		}
		if h.next.CompareAndSwap(n, end) {
			h.ensureSegment(uint32(start >> segBits))
			for {
				hw := h.stats.highWater.Load()
				if int64(end) <= hw || h.stats.highWater.CompareAndSwap(hw, int64(end)) {
					break
				}
			}
			return Ref(start), nil
		}
	}
}
