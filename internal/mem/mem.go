// Package mem implements the simulated shared heap on which the LFRC
// reproduction runs.
//
// The PODC 2001 paper assumes a C++-style environment with explicit new and
// delete and no garbage collector: freed memory really is recycled, so a
// use-after-free corrupts whatever object now occupies the slot. Go's runtime
// GC would silently mask exactly the bugs (premature free, ABA) that LFRC
// exists to prevent, so this package provides a manual heap instead:
//
//   - The heap is a segmented arena of 64-bit word cells addressed by 32-bit
//     word indices (Addr). Address 0 is the null reference.
//   - Objects are typed, fixed-size records of cells: a three-word header
//     (packed metadata, reference count, aux/free-link) followed by the
//     payload fields declared by a TypeDesc.
//   - Allocation is lock-free and sharded: each shard owns per-size free
//     lists (Treiber stacks whose head words pack an index and a pop counter
//     to defeat ABA) and a private bump chunk claimed from the arena one slab
//     at a time, so the hot path never contends on a global head or cursor.
//     Shards overflow surplus freed slots to a global list and refill from
//     it, and a local miss still recycles — global list, then sibling
//     shards — before carving new arena words.
//   - Free poisons the reference-count cell and payload cells and sets a
//     freed bit. Alloc verifies the poison is intact; a damaged poison word
//     means some thread wrote to freed memory — precisely the corruption the
//     paper's DCAS-based LFRCLoad prevents — and is counted in Stats.
//
// All cell accesses are atomic. Every value stored in a cell that
// participates in CAS/DCAS must keep the top two bits clear; they are
// reserved as descriptor tags by the software-MCAS engine (package dcas).
package mem

import (
	"errors"
	"fmt"
)

// Addr is a 32-bit word index into the heap. Addr 0 is the null address; no
// cell is ever allocated there.
type Addr uint32

// Ref is an object reference: the address of the object's header word.
// A zero Ref is the null reference.
type Ref = Addr

// TypeID identifies a registered object type.
type TypeID uint16

const (
	// HeaderWords is the number of bookkeeping words that precede an
	// object's payload fields: the packed header, the reference count,
	// and the aux word (free-list link while the object is on a free
	// list; reserved otherwise).
	HeaderWords = 3

	// MaxFields is the maximum number of payload fields in a registered
	// type. Together with HeaderWords it bounds object size so that
	// per-size free lists can live in a small fixed table.
	MaxFields = 61

	// maxObjWords is the largest total object size in words.
	maxObjWords = HeaderWords + MaxFields

	// Poison is written into the rc cell and payload cells of freed
	// objects. Its top two bits are clear so that a racing engine
	// operation never mistakes it for an MCAS descriptor.
	Poison uint64 = 0x3ADE_ADBE_EF5C_0DED

	// ValueMask covers the bits a cell value may use. The two top bits
	// are reserved for descriptor tags by the dcas package.
	ValueMask uint64 = (1 << 62) - 1
)

// Header word layout (word 0 of every object):
//
//	bits  0..15  size of the object in words, including the header
//	bits 16..29  TypeID (14 bits)
//	bit  30      freed flag
//	bits 31..61  allocation generation (31 bits, wraps)
//	bits 62..63  always zero (reserved for descriptor tags)
const (
	hdrSizeBits = 16
	hdrSizeMask = (1 << hdrSizeBits) - 1

	hdrTypeShift = 16
	hdrTypeBits  = 14
	hdrTypeMask  = (1 << hdrTypeBits) - 1

	hdrFreedBit = 1 << 30

	hdrGenShift = 31
	hdrGenBits  = 31
	hdrGenMask  = (1 << hdrGenBits) - 1
)

// maxTypes bounds the number of registrable types (14-bit TypeID).
const maxTypes = 1 << hdrTypeBits

// Errors returned by heap operations.
var (
	// ErrOutOfMemory is returned by Alloc when the arena limit is reached
	// and the relevant free list is empty.
	ErrOutOfMemory = errors.New("mem: arena exhausted")

	// ErrDoubleFree is returned by Free when the object is already freed.
	ErrDoubleFree = errors.New("mem: double free")

	// ErrBadRef is returned when a reference does not name an allocated
	// object.
	ErrBadRef = errors.New("mem: bad reference")

	// ErrTooManyTypes is returned by RegisterType when the type table is
	// full.
	ErrTooManyTypes = errors.New("mem: type table full")

	// ErrBadType is returned for malformed type descriptors or unknown
	// type ids.
	ErrBadType = errors.New("mem: bad type descriptor")

	// ErrValueRange is the shared sentinel wrapped by every structure
	// package when a caller's value does not fit in a cell (bits 62..63
	// are reserved for descriptor tags). It lives here, beside ValueMask,
	// so the collections and the root package agree on one identity.
	ErrValueRange = errors.New("value out of range")
)

// packHeader builds a header word.
func packHeader(size int, t TypeID, freed bool, gen uint32) uint64 {
	h := uint64(size&hdrSizeMask) |
		uint64(t&hdrTypeMask)<<hdrTypeShift |
		uint64(gen&hdrGenMask)<<hdrGenShift
	if freed {
		h |= hdrFreedBit
	}
	return h
}

// headerSize extracts the object size in words.
func headerSize(h uint64) int { return int(h & hdrSizeMask) }

// headerType extracts the TypeID.
func headerType(h uint64) TypeID { return TypeID((h >> hdrTypeShift) & hdrTypeMask) }

// headerFreed reports whether the freed bit is set.
func headerFreed(h uint64) bool { return h&hdrFreedBit != 0 }

// headerGen extracts the allocation generation.
func headerGen(h uint64) uint32 { return uint32((h >> hdrGenShift) & hdrGenMask) }

// TypeDesc describes an object type: a fixed number of single-word payload
// fields, some of which hold references (Addr values) to other objects.
// Pointer fields are what LFRCDestroy recurses through and what the tracing
// collector follows.
type TypeDesc struct {
	// Name is a diagnostic label.
	Name string

	// NumFields is the number of payload words.
	NumFields int

	// PtrFields lists the payload field indices (0-based) that hold
	// object references. Indices must be strictly increasing and within
	// [0, NumFields).
	PtrFields []int
}

// validate checks the descriptor's internal consistency.
func (d TypeDesc) validate() error {
	if d.NumFields < 0 || d.NumFields > MaxFields {
		return fmt.Errorf("%w: %q has %d fields (max %d)", ErrBadType, d.Name, d.NumFields, MaxFields)
	}
	prev := -1
	for _, f := range d.PtrFields {
		if f <= prev || f >= d.NumFields {
			return fmt.Errorf("%w: %q pointer field %d out of order or range", ErrBadType, d.Name, f)
		}
		prev = f
	}
	return nil
}

// size returns the total object size in words, including the header.
func (d TypeDesc) size() int { return HeaderWords + d.NumFields }
