package mem

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestShardCountOption(t *testing.T) {
	if got, want := NewHeap().Shards(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default Shards() = %d, want GOMAXPROCS = %d", got, want)
	}
	if got := NewHeap(WithAllocShards(3)).Shards(); got != 3 {
		t.Errorf("WithAllocShards(3): Shards() = %d, want 3", got)
	}
	if got := NewHeap(WithAllocShards(1000)).Shards(); got != 64 {
		t.Errorf("WithAllocShards(1000): Shards() = %d, want clamp to 64", got)
	}
	if got, want := NewHeap(WithAllocShards(-1)).Shards(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("WithAllocShards(-1): Shards() = %d, want fallback %d", got, want)
	}
}

// TestOverflowMigrationAndRefill drives a single shard past twice its fill
// target so it must migrate slots to the global overflow list, then
// reallocates everything and checks every slot came back recycled.
func TestOverflowMigrationAndRefill(t *testing.T) {
	h := NewHeap(WithAllocShards(1))
	tid := h.MustRegisterType(TypeDesc{Name: "node", NumFields: 2})

	const n = 3 * shardFillTarget
	refs := make([]Ref, 0, n)
	for i := 0; i < n; i++ {
		refs = append(refs, h.MustAlloc(tid))
	}
	for _, r := range refs {
		if err := h.Free(r); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}

	as := h.AllocStats()
	if as.GlobalFreeListed == 0 {
		t.Fatalf("freed %d slots of one size through one shard (2x fill target is %d); global overflow list still empty", n, 2*shardFillTarget)
	}
	if got := as.GlobalFreeListed + as.PerShard[0].FreeListed; got != n {
		t.Errorf("global (%d) + local (%d) free-listed = %d, want %d", as.GlobalFreeListed, as.PerShard[0].FreeListed, got, n)
	}

	hw := h.Stats().HighWater
	for i := 0; i < n; i++ {
		h.MustAlloc(tid)
	}
	st := h.Stats()
	if st.Recycles != n {
		t.Errorf("Recycles = %d, want %d (every realloc should hit a free list)", st.Recycles, n)
	}
	if st.HighWater != hw {
		t.Errorf("HighWater grew from %d to %d while free slots were available", hw, st.HighWater)
	}
}

// TestStealFree parks a freed slot on one shard and steals it from the
// other's perspective.
func TestStealFree(t *testing.T) {
	h := NewHeap(WithAllocShards(2))
	tid := h.MustRegisterType(TypeDesc{Name: "node", NumFields: 2})
	r := h.MustAlloc(tid)
	size := h.SizeOf(r)
	if err := h.Free(r); err != nil {
		t.Fatalf("Free: %v", err)
	}
	holder := -1
	for i := range h.shards {
		if h.shards[i].counts[size].Load() > 0 {
			holder = i
			break
		}
	}
	if holder < 0 {
		t.Fatal("freed slot not found on any shard's local list")
	}
	got, ok := h.stealFree(1-holder, size)
	if !ok || got != r {
		t.Fatalf("stealFree from sibling of shard %d = (%#x, %v), want (%#x, true)", holder, got, ok, r)
	}
}

// TestContentionShardedAllocFree hammers Alloc/Free from oversubscribed
// goroutines across size classes, with burst phases that force overflow
// migration and refill, then checks the conservation invariants.
func TestContentionShardedAllocFree(t *testing.T) {
	h := NewHeap()
	types := []TypeID{
		h.MustRegisterType(TypeDesc{Name: "c2", NumFields: 2, PtrFields: []int{0}}),
		h.MustRegisterType(TypeDesc{Name: "c5", NumFields: 5, PtrFields: []int{0, 1}}),
		h.MustRegisterType(TypeDesc{Name: "c13", NumFields: 13}),
	}

	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const rounds = 40
	burst := 2*shardFillTarget + 16 // past the migration threshold every round

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := make([]Ref, 0, burst)
			for round := 0; round < rounds; round++ {
				for i := 0; i < burst; i++ {
					r, err := h.Alloc(types[rng.Intn(len(types))])
					if err != nil {
						errs <- err
						return
					}
					local = append(local, r)
				}
				// Free in shuffled order so list traffic isn't pure LIFO.
				rng.Shuffle(len(local), func(i, j int) { local[i], local[j] = local[j], local[i] })
				for _, r := range local {
					if err := h.Free(r); err != nil {
						errs <- err
						return
					}
				}
				local = local[:0]
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("worker error: %v", err)
	}

	st := h.Stats()
	if st.Allocs != st.Frees+st.LiveObjects {
		t.Errorf("conservation violated: Allocs (%d) != Frees (%d) + LiveObjects (%d)", st.Allocs, st.Frees, st.LiveObjects)
	}
	if st.LiveObjects != 0 || st.LiveWords != 0 {
		t.Errorf("everything was freed but LiveObjects = %d, LiveWords = %d", st.LiveObjects, st.LiveWords)
	}
	if st.Corruptions != 0 {
		t.Errorf("Corruptions = %d, want 0", st.Corruptions)
	}
	if st.DoubleFrees != 0 {
		t.Errorf("DoubleFrees = %d, want 0", st.DoubleFrees)
	}
	if st.Recycles == 0 {
		t.Error("no allocation was ever recycled; free lists are not being consulted")
	}

	as := h.AllocStats()
	var allocs, frees, recycles, listed int64
	for _, sh := range as.PerShard {
		allocs += sh.Allocs
		frees += sh.Frees
		recycles += sh.Recycles
		listed += sh.FreeListed
	}
	if allocs != st.Allocs || frees != st.Frees || recycles != st.Recycles {
		t.Errorf("per-shard sums (allocs %d, frees %d, recycles %d) disagree with Stats (%d, %d, %d)",
			allocs, frees, recycles, st.Allocs, st.Frees, st.Recycles)
	}
	// At quiescence every freed-but-not-recycled slot is parked on exactly
	// one list, local or global.
	if got, want := listed+as.GlobalFreeListed, st.Frees-st.Recycles; got != want {
		t.Errorf("free-listed slots (local %d + global %d = %d) != Frees - Recycles (%d)",
			listed, as.GlobalFreeListed, listed+as.GlobalFreeListed, want)
	}

	// Walk must still see every carved slot exactly once, all freed now.
	var walked int64
	h.Walk(func(r Ref, freed bool) bool {
		if !freed {
			t.Errorf("Walk found live object %#x after everything was freed", r)
			return false
		}
		walked++
		return true
	})
	if want := st.Allocs - st.Recycles; walked != want {
		t.Errorf("Walk visited %d slots, want %d (Allocs - Recycles)", walked, want)
	}
}
