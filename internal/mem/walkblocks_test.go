package mem

import "testing"

// TestWalkBlocksReportsTypedBlocks: WalkBlocks is the census's heap iterator;
// each live block must surface with its ref, type, size and generation, and
// freed slots must be flagged rather than skipped.
func TestWalkBlocksReportsTypedBlocks(t *testing.T) {
	h := NewHeap()
	small := h.MustRegisterType(TypeDesc{Name: "small", NumFields: 1})
	big := h.MustRegisterType(TypeDesc{Name: "big", NumFields: 5, PtrFields: []int{0, 4}})

	s1, err := h.Alloc(small)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	b1, err := h.Alloc(big)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	dead, err := h.Alloc(small)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := h.Free(dead); err != nil {
		t.Fatalf("Free: %v", err)
	}

	got := map[Ref]Block{}
	h.WalkBlocks(func(b Block) bool {
		if _, dup := got[b.Ref]; dup {
			t.Errorf("block %d visited twice", b.Ref)
		}
		got[b.Ref] = b
		return true
	})
	if len(got) != 3 {
		t.Fatalf("visited %d blocks, want 3: %+v", len(got), got)
	}
	if b := got[s1]; b.Type != small || b.Size != HeaderWords+1 || b.Freed {
		t.Errorf("small block = %+v", b)
	}
	if b := got[b1]; b.Type != big || b.Size != HeaderWords+5 || b.Freed {
		t.Errorf("big block = %+v", b)
	}
	if b := got[dead]; !b.Freed {
		t.Errorf("freed slot not flagged: %+v", b)
	}

	// The per-block fields must agree with the word-at-a-time accessors.
	for r, b := range got {
		if b.Type != h.TypeOf(r) || b.Size != h.SizeOf(r) || b.Freed != h.IsFreed(r) || b.Gen != h.Generation(r) {
			t.Errorf("block %d disagrees with accessors: %+v", r, b)
		}
	}
}

// TestWalkBlocksEarlyStop: returning false halts the walk.
func TestWalkBlocksEarlyStop(t *testing.T) {
	h := NewHeap()
	tid := h.MustRegisterType(TypeDesc{Name: "t", NumFields: 1})
	for i := 0; i < 8; i++ {
		if _, err := h.Alloc(tid); err != nil {
			t.Fatalf("Alloc: %v", err)
		}
	}
	visited := 0
	h.WalkBlocks(func(Block) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Errorf("visited %d blocks after early stop, want 3", visited)
	}
}

// TestWalkBlocksAgreesWithWalk: the block walk and the ref walk must see the
// same slots in the same order.
func TestWalkBlocksAgreesWithWalk(t *testing.T) {
	h := NewHeap()
	a := h.MustRegisterType(TypeDesc{Name: "a", NumFields: 2})
	b := h.MustRegisterType(TypeDesc{Name: "b", NumFields: 7})
	for i := 0; i < 16; i++ {
		tid := a
		if i%3 == 0 {
			tid = b
		}
		r, err := h.Alloc(tid)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if i%5 == 0 {
			if err := h.Free(r); err != nil {
				t.Fatalf("Free: %v", err)
			}
		}
	}
	var fromWalk []Ref
	h.Walk(func(r Ref, freed bool) bool {
		fromWalk = append(fromWalk, r)
		return true
	})
	var fromBlocks []Ref
	h.WalkBlocks(func(blk Block) bool {
		fromBlocks = append(fromBlocks, blk.Ref)
		return true
	})
	if len(fromWalk) != len(fromBlocks) {
		t.Fatalf("Walk saw %d slots, WalkBlocks %d", len(fromWalk), len(fromBlocks))
	}
	for i := range fromWalk {
		if fromWalk[i] != fromBlocks[i] {
			t.Errorf("slot %d: Walk=%d WalkBlocks=%d", i, fromWalk[i], fromBlocks[i])
		}
	}
}
