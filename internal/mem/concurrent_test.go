package mem

import (
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentAllocFree hammers the allocator from many goroutines and
// checks the accounting invariants afterwards: no slot handed out twice, no
// corruption, exact live counts.
func TestConcurrentAllocFree(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	h := NewHeap(WithMaxWords(8 * segWords))
	typ := h.MustRegisterType(TypeDesc{Name: "t", NumFields: 4, PtrFields: []int{0, 1}})

	const (
		workers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			local := make([]Ref, 0, 16)
			for i := 0; i < rounds; i++ {
				if len(local) < 8 || (i+seed)%3 != 0 {
					r, err := h.Alloc(typ)
					if err != nil {
						errs <- err
						return
					}
					// Touch the payload so cross-thread slot
					// sharing would damage poison.
					h.Store(h.FieldAddr(r, 2), uint64(seed)<<32|uint64(i))
					local = append(local, r)
				} else {
					r := local[len(local)-1]
					local = local[:len(local)-1]
					if err := h.Free(r); err != nil {
						errs <- err
						return
					}
				}
			}
			for _, r := range local {
				if err := h.Free(r); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("worker error: %v", err)
	}

	s := h.Stats()
	if s.LiveObjects != 0 || s.LiveWords != 0 {
		t.Errorf("leftovers: LiveObjects=%d LiveWords=%d", s.LiveObjects, s.LiveWords)
	}
	if s.Corruptions != 0 {
		t.Errorf("Corruptions = %d, want 0 (allocator handed a live slot to two threads?)", s.Corruptions)
	}
	if s.DoubleFrees != 0 {
		t.Errorf("DoubleFrees = %d, want 0", s.DoubleFrees)
	}
	if s.Allocs != s.Frees {
		t.Errorf("Allocs=%d != Frees=%d", s.Allocs, s.Frees)
	}
}

// TestConcurrentFreeListNoDuplicates drains a shared pool of freed slots
// from many goroutines; every pop must yield a distinct slot (the packed
// pop-counter defeats ABA).
func TestConcurrentFreeListNoDuplicates(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	h := NewHeap(WithMaxWords(8 * segWords))
	typ := h.MustRegisterType(TypeDesc{Name: "t", NumFields: 1})

	const n = 4000
	for i := 0; i < n; i++ {
		r := h.MustAlloc(typ)
		if err := h.Free(r); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}

	const workers = 8
	results := make([][]Ref, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/workers; i++ {
				r, err := h.Alloc(typ)
				if err != nil {
					t.Errorf("Alloc: %v", err)
					return
				}
				results[w] = append(results[w], r)
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[Ref]bool, n)
	for _, rs := range results {
		for _, r := range rs {
			if seen[r] {
				t.Fatalf("slot %d handed out twice", r)
			}
			seen[r] = true
		}
	}
	if h.Stats().Corruptions != 0 {
		t.Errorf("Corruptions = %d, want 0", h.Stats().Corruptions)
	}
}

// TestConcurrentCellCAS checks that cell CAS operations over the heap are
// linearizable enough to implement a correct shared counter.
func TestConcurrentCellCAS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	h := NewHeap()
	typ := h.MustRegisterType(TypeDesc{Name: "ctr", NumFields: 1})
	r := h.MustAlloc(typ)
	a := h.FieldAddr(r, 0)

	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				for {
					cur := h.Load(a)
					if h.CAS(a, cur, cur+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Load(a); got != workers*perW {
		t.Errorf("counter = %d, want %d", got, workers*perW)
	}
}
