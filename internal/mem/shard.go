package mem

import "sync/atomic"

// Sharded allocation fast path.
//
// The heap's free lists and bump cursor are striped across shards so that
// allocation and reclamation scale with cores instead of serializing on one
// Treiber head and one global cursor. Each shard owns:
//
//   - one free list per object size class, with an approximate occupancy
//     count: when a shard accumulates 2×shardFillTarget freed slots of one
//     size it migrates shardFillTarget of them to the heap's global overflow
//     list, where other shards refill from (the per-thread
//     freelist/overflow-target pattern of the classic LFRC implementations);
//   - a bump chunk: a contiguous word range claimed from the global cursor
//     in slabWords-sized slabs, so the hot carve path CASes a shard-private
//     cache line and touches the shared cursor only once per slab.
//
// Goroutines are routed to shards by stripe.Hint — a locality hint, not an
// identity — so every structure here must stay safe for concurrent use by
// any number of goroutines. Allocation still prefers recycling anywhere over
// carving new arena words: a local miss falls back to the global overflow
// list, then to stealing from sibling shards, and only then to the bump
// chunk. That preserves the seed allocator's invariant that freed slots are
// reused before the footprint grows.

const (
	// shardFillTarget is the per-shard, per-size free-list fill target.
	// Shards overflow to the global list at twice this occupancy and
	// migrate this many slots when they do.
	shardFillTarget = 64

	// shardRefillBatch is how many extra slots a shard pulls from the
	// global overflow list on a local miss, amortizing the shared head
	// CAS over many allocations.
	shardRefillBatch = 16

	// slabWords is the bump-chunk claim size in words. Slabs never cross
	// segment boundaries, so objects carved from them never do either.
	slabWords = 4096
)

// freeStack is a lock-free Treiber stack of freed slots. The head packs a
// 32-bit pop counter (high) and a 32-bit slot address (low); the counter
// defeats ABA on pop. Links live in the slots' aux words.
type freeStack struct {
	head atomic.Uint64
}

// push links slot r onto the stack.
func (s *freeStack) push(h *Heap, r Ref) {
	for {
		old := s.head.Load()
		h.Store(h.AuxAddr(r), old&0xFFFF_FFFF)
		if s.head.CompareAndSwap(old, old&^uint64(0xFFFF_FFFF)|uint64(r)) {
			return
		}
	}
}

// pop unlinks and returns one slot, or 0 if the stack is observed empty.
func (s *freeStack) pop(h *Heap) Ref {
	for {
		old := s.head.Load()
		r := Ref(old & 0xFFFF_FFFF)
		if r == 0 {
			return 0
		}
		next := h.Load(h.AuxAddr(r)) & 0xFFFF_FFFF
		cnt := (old >> 32) + 1
		if s.head.CompareAndSwap(old, cnt<<32|next) {
			return r
		}
	}
}

// allocShard is one stripe of the allocator. The padding keeps neighbouring
// shards' hot words on distinct cache lines.
type allocShard struct {
	_ [64]byte

	// chunk packs the shard's current bump range: end (high 32 bits) and
	// cursor (low 32 bits). Zero means no chunk.
	chunk atomic.Uint64

	// spare parks a claimed-but-uninstalled chunk after a lost install
	// race, so the words are not abandoned. Zero means empty.
	spare atomic.Uint64

	// lists and counts hold the shard's per-size free lists and their
	// approximate occupancy.
	lists  [maxObjWords + 1]freeStack
	counts [maxObjWords + 1]atomic.Int32

	_ [64]byte
}

// popLocal takes a slot of the given size class from this shard's list.
func (sh *allocShard) popLocal(h *Heap, size int) (Ref, bool) {
	r := sh.lists[size].pop(h)
	if r == 0 {
		return 0, false
	}
	sh.counts[size].Add(-1)
	return r, true
}

// pushLocal parks a freed slot on this shard's list, migrating a batch to
// the heap's global overflow list when the shard holds too many.
func (sh *allocShard) pushLocal(h *Heap, r Ref, size int) {
	sh.lists[size].push(h, r)
	if sh.counts[size].Add(1) < 2*shardFillTarget {
		return
	}
	for moved := 0; moved < shardFillTarget; moved++ {
		m := sh.lists[size].pop(h)
		if m == 0 {
			break
		}
		sh.counts[size].Add(-1)
		h.global[size].push(h, m)
		h.globalFree.Add(1)
	}
}

// popGlobal refills from the heap's global overflow list: one slot is
// returned to the caller and up to shardRefillBatch-1 more are moved onto
// the shard's local list.
func (h *Heap) popGlobal(sh *allocShard, size int) (Ref, bool) {
	r := h.global[size].pop(h)
	if r == 0 {
		return 0, false
	}
	h.globalFree.Add(-1)
	for extra := 0; extra < shardRefillBatch-1; extra++ {
		m := h.global[size].pop(h)
		if m == 0 {
			break
		}
		h.globalFree.Add(-1)
		sh.lists[size].push(h, m)
		sh.counts[size].Add(1)
	}
	return r, true
}

// stealFree scans sibling shards' free lists for a recyclable slot. It is
// the cold path that keeps "recycle before carving" a heap-wide invariant
// even when frees and allocs land on different shards.
func (h *Heap) stealFree(self int, size int) (Ref, bool) {
	for i := range h.shards {
		if i == self {
			continue
		}
		if r, ok := h.shards[i].popLocal(h, size); ok {
			return r, true
		}
	}
	return 0, false
}

// shardBump carves size words from the shard's bump chunk, claiming a fresh
// slab from the global cursor when the chunk is exhausted. Chunk tails too
// small for the request are abandoned (never written, skipped by Walk).
func (h *Heap) shardBump(sh *allocShard, size int) (Ref, error) {
	for {
		ce := sh.chunk.Load()
		cur := ce & 0xFFFF_FFFF
		end := ce >> 32
		if cur+uint64(size) <= end {
			if sh.chunk.CompareAndSwap(ce, ce+uint64(size)) {
				return Ref(cur), nil
			}
			continue
		}
		// Chunk exhausted (or absent): adopt the parked spare if it can
		// satisfy the request.
		if sp := sh.spare.Swap(0); sp != 0 {
			spCur := sp & 0xFFFF_FFFF
			spEnd := sp >> 32
			if spCur+uint64(size) <= spEnd {
				if sh.chunk.CompareAndSwap(ce, sp+uint64(size)) {
					return Ref(spCur), nil
				}
				// The chunk changed under us; repark the spare
				// (dropping it if a new one appeared meanwhile) and
				// retry against the new chunk.
				sh.spare.CompareAndSwap(0, sp)
				continue
			}
			// Spare too small for this request: repark it for smaller
			// requests and claim a fresh slab below.
			sh.spare.CompareAndSwap(0, sp)
		}
		start, cend, err := h.claimChunk(size)
		if err != nil {
			return 0, err
		}
		newCE := uint64(cend)<<32 | (uint64(start) + uint64(size))
		if sh.chunk.CompareAndSwap(ce, newCE) {
			return Ref(start), nil
		}
		// Lost an install race with a concurrent refill of this shard;
		// park the claimed slab for the next exhaustion.
		sh.spare.CompareAndSwap(0, uint64(cend)<<32|uint64(start))
	}
}

// claimChunk advances the global cursor by one slab (clipped to segment
// boundaries and the arena limit) and returns the claimed [start, end)
// range, guaranteed to hold at least min words.
func (h *Heap) claimChunk(min int) (start, end uint32, err error) {
	for {
		n := h.next.Load()
		s := n
		segEnd := (s>>segBits + 1) << segBits
		if segEnd-s < uint64(min) {
			// Too close to a segment boundary for even one object;
			// skip the sliver.
			s = segEnd
			segEnd = s + segWords
		}
		e := s + slabWords
		if e > segEnd {
			e = segEnd
		}
		if e > h.limit {
			e = h.limit
		}
		if s >= h.limit || e < s+uint64(min) {
			return 0, 0, ErrOutOfMemory
		}
		if h.next.CompareAndSwap(n, e) {
			h.ensureSegment(uint32(s >> segBits))
			for {
				hw := h.highWater.Load()
				if int64(e) <= hw || h.highWater.CompareAndSwap(hw, int64(e)) {
					break
				}
			}
			return uint32(s), uint32(e), nil
		}
	}
}
