package lfrc

import (
	"io"

	"lfrc/internal/census"
	"lfrc/internal/mem"
)

// CensusSnapshot is one whole-heap object-graph census: reachability from
// the declared roots, unreachable-but-counted cycles (the garbage LFRC can
// never free, PAPER.md §7), stored-RC vs. in-edge mismatches, and per-type
// retained-size attribution. See System.Census.
type CensusSnapshot = census.Snapshot

// CensusDelta is the difference between two censuses: per-type growth and
// newly-appeared cycles. See CensusDiff.
type CensusDelta = census.Delta

// CensusCycle is one unreachable-but-counted strongly connected component
// reported by a census.
type CensusCycle = census.Cycle

// CensusRoot is one declared reachability root in a census.
type CensusRoot = census.Root

// WithCensusRoots registers an extra root source for the heap census: fn is
// called at snapshot time and returns additional object refs to treat as
// reachability roots, beyond the collection anchors every open structure
// registers automatically. Use it when application code holds counted
// references in Go-side variables the census cannot see — without declaring
// them, their subgraphs would be misreported as leaks. The option may be
// given multiple times; nil refs (0) are ignored.
func WithCensusRoots(fn func() []uint32) Option {
	return optionFunc(func(c *config) {
		if fn != nil {
			c.censusRoots = append(c.censusRoots, fn)
		}
	})
}

// Census takes a whole-heap object-graph snapshot: it walks every allocated
// block, reads each pointer field and reference count with side-effect-free
// atomic loads, and reports reachability from the declared roots (collection
// anchors plus WithCensusRoots), cycle leaks with retained bytes, stored-RC
// vs. actual-in-edge mismatches, and per-type attribution.
//
// The census is strictly read-only — it frees nothing, retains nothing, and
// never helps an in-flight engine operation — so it is safe to take while
// mutators run; such a snapshot is race-clean but approximate. Quiescent
// snapshots are exact. Objects parked by deferred reclamation (epoch limbo
// bins, budget-parked zombies) are classified "limbo", not leaked; drain
// with DrainZombies first when a final verdict is wanted.
//
// The most recent snapshot is also what the lfrc_census_* metrics report.
func (s *System) Census() *CensusSnapshot {
	roots := map[uint32]census.Root{}
	for r, nr := range s.collector.NamedRoots() {
		name := nr.Name
		if name == "" {
			name = "root"
		}
		roots[uint32(r)] = census.Root{Ref: uint32(r), Name: name, Count: nr.Count}
	}
	for _, fn := range s.censusRoots {
		for _, ref := range fn() {
			if ref == 0 || !s.heap.InArena(mem.Ref(ref)) {
				continue
			}
			r := roots[ref]
			if r.Ref == 0 {
				r = census.Root{Ref: ref, Name: "extra"}
			}
			r.Count++
			roots[ref] = r
		}
	}
	snap := census.Take(census.Config{
		Heap:    s.heap,
		Read:    s.rc.SnapshotRead,
		Decode:  s.rc.DecodeLink,
		Roots:   roots,
		Backend: s.ReclaimerName(),
	})
	s.lastCensus.Store(snap)
	return snap
}

// CensusDiff returns to - from: per-type growth and new cycles between two
// snapshots taken on this or any system.
func CensusDiff(from, to *CensusSnapshot) CensusDelta { return census.Diff(from, to) }

// WriteCensusJSON takes a census and writes it as schema-versioned JSON (the
// /debug/lfrc/census.json payload).
func (s *System) WriteCensusJSON(w io.Writer) error { return s.Census().WriteJSON(w) }

// WriteCensusProfile takes a census and writes it in pprof's gzipped
// heap-profile shape (the /debug/lfrc/census.pb.gz payload): samples are
// (objects, bytes) by type under reachable / unreachable / limbo / cycle-leak
// class frames, so
//
//	go tool pprof -top census.pb.gz
//
// ranks leak sources by retained bytes.
func (s *System) WriteCensusProfile(w io.Writer) error { return s.Census().WriteProfile(w) }

// WriteCensusDOT takes a census and renders the object graph as Graphviz DOT
// for small heaps (maxNodes cap, 0 = 256; larger heaps return an error
// rather than a hairball). Nodes are colored by reachability class.
func (s *System) WriteCensusDOT(w io.Writer, maxNodes int) error {
	return s.Census().WriteDOT(w, maxNodes)
}
