package lfrc_test

import (
	"testing"

	"lfrc"
)

func TestTraceRecordsOperations(t *testing.T) {
	sys, err := lfrc.New(lfrc.WithTraceSampling(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := lfrc.Value(1); i <= 50; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
	}
	for {
		if _, ok := d.PopLeft(); !ok {
			break
		}
	}
	d.Close()

	tr := sys.Trace()
	if tr.SampleEvery != 1 {
		t.Errorf("SampleEvery = %d, want 1", tr.SampleEvery)
	}
	if tr.Recorded == 0 || len(tr.Events) == 0 {
		t.Fatalf("full-sampling trace is empty: recorded=%d events=%d", tr.Recorded, len(tr.Events))
	}
	for _, kind := range []string{"load", "push_right", "pop_left", "alloc", "free"} {
		if tr.Latency[kind].Count == 0 {
			t.Errorf("no %q latency samples in trace digest", kind)
		}
	}
	if tr.Retries.Count == 0 {
		t.Error("no retry samples in trace digest")
	}
}

func TestObserverDisabledByDefault(t *testing.T) {
	sys, err := lfrc.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	if err := d.PushRight(1); err != nil {
		t.Fatalf("PushRight: %v", err)
	}
	d.Close()

	tr := sys.Trace()
	if tr.Recorded != 0 || len(tr.Events) != 0 || tr.SampleEvery != 0 {
		t.Errorf("default system recorded a trace: %+v", tr)
	}
	if pms := sys.Postmortems(); pms != nil {
		t.Errorf("default system has postmortems: %v", pms)
	}
}

// TestTraceSamplingZeroInstallsDisabledRecorder pins the "disabled" mode of
// experiment O1: the recorder is installed (its fixed hot-path cost is paid)
// but records nothing.
func TestTraceSamplingZeroInstallsDisabledRecorder(t *testing.T) {
	sys, err := lfrc.New(lfrc.WithTraceSampling(0))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := lfrc.Value(1); i <= 20; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
	}
	d.Close()

	tr := sys.Trace()
	if tr.Recorded != 0 || len(tr.Events) != 0 {
		t.Errorf("sampling-0 recorder recorded events: %+v", tr)
	}
}

func TestTraceSampledIsSparse(t *testing.T) {
	sys, err := lfrc.New(lfrc.WithObserver(true)) // default 1-in-64 sampling
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	const ops = 2000
	for i := 0; i < ops; i++ {
		if err := d.PushRight(lfrc.Value(i + 1)); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
		if _, ok := d.PopLeft(); !ok {
			t.Fatal("PopLeft on non-empty deque failed")
		}
	}
	d.Close()

	tr := sys.Trace()
	if tr.SampleEvery != 64 {
		t.Errorf("default SampleEvery = %d, want 64", tr.SampleEvery)
	}
	if tr.Recorded == 0 {
		t.Fatal("sampled recorder recorded nothing over 2000 op pairs")
	}
	// Each push/pop pair fans out into several recordable ops; even so,
	// 1-in-64 sampling must record well under the op count.
	if tr.Recorded > ops {
		t.Errorf("sampled recorder recorded %d events over %d op pairs; sampling broken", tr.Recorded, ops)
	}
}
