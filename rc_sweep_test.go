package lfrc_test

import (
	"testing"

	"lfrc"
)

// TestRCStrategySweep is the cross-strategy acceptance gate for the RCStrategy
// seam: the fault/chaos/auditor storm that guards the reclamation seam runs
// over every {figure2, split} x {locking, mcas} x {lfrc, epoch} cell. Unlike
// reclamation — which is policy layered over a safe count — the count protocol
// itself is safety (a lost decrement leaks, a stray one frees live memory), so
// no assertion here is strategy-conditional: both strategies must come out of
// the same storm with a clean lifecycle auditor, a clean quiescent RC audit,
// and an empty heap. Run under -race by `make check-rc`.
func TestRCStrategySweep(t *testing.T) {
	const plan = "core.*:p=0.01;reclaim.*:p=0.05;snark.*:p=0.02;queue.*:p=0.02;" +
		"stack.*:p=0.02;set.*:p=0.02;mem.alloc:p=0.002;mem.alloc.slow:p=0.01"
	for _, strat := range []lfrc.RCStrategy{lfrc.RCFigure2, lfrc.RCSplit} {
		for _, eng := range []lfrc.Engine{lfrc.EngineLocking, lfrc.EngineMCAS} {
			for _, rec := range []lfrc.Reclaimer{lfrc.ReclaimerLFRC, lfrc.ReclaimerEpoch} {
				strat, eng, rec := strat, eng, rec
				t.Run(strat.String()+"/"+eng.String()+"/"+rec.String(), func(t *testing.T) {
					for _, seed := range []uint64{1, 20260808} {
						seed := seed
						t.Run("seed="+itoa(seed), func(t *testing.T) {
							sweepOneConfig(t, rec, strat, plan, seed, lfrc.WithEngine(eng))
						})
					}
				})
			}
		}
	}
}
