package lfrc_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestTimelineCSVFormatGolden locks the /debug/lfrc/timeline.csv row format:
// the header line is golden (spreadsheets and gnuplot scripts address columns
// by name), and every data row must carry exactly one field per column with
// the seq column strictly increasing.
//
// Regenerate with: UPDATE_GOLDEN=1 go test -run TestTimelineCSVFormatGolden .
func TestTimelineCSVFormatGolden(t *testing.T) {
	sys := newTimelineSystem(t)
	sys.CaptureTimelineSample()
	sys.CaptureTimelineSample()
	sys.CaptureTimelineSample()

	var buf bytes.Buffer
	if err := sys.WriteTimelineCSV(&buf); err != nil {
		t.Fatalf("WriteTimelineCSV: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 rows:\n%s", len(lines), buf.String())
	}

	header := lines[0] + "\n"
	golden := filepath.Join("testdata", "timeline_csv_header.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(golden, []byte(header), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if header != string(want) {
		t.Errorf("timeline.csv header changed.\n--- got ---\n%s--- want (%s) ---\n%s"+
			"If the change is intentional, regenerate with UPDATE_GOLDEN=1 and call it out in review.",
			header, golden, want)
	}

	cols := strings.Split(lines[0], ",")
	prevSeq := int64(-1)
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != len(cols) {
			t.Errorf("row has %d fields, header has %d columns: %q", len(fields), len(cols), line)
			continue
		}
		seq, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			t.Errorf("seq column not numeric: %q", line)
			continue
		}
		if seq <= prevSeq {
			t.Errorf("seq not strictly increasing: %d after %d", seq, prevSeq)
		}
		prevSeq = seq
	}
}
