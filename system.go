package lfrc

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"lfrc/internal/census"
	"lfrc/internal/check"
	"lfrc/internal/contend"
	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/dlist"
	"lfrc/internal/fault"
	"lfrc/internal/gctrace"
	"lfrc/internal/lifecycle"
	"lfrc/internal/mem"
	"lfrc/internal/msqueue"
	"lfrc/internal/obs"
	"lfrc/internal/snark"
	"lfrc/internal/stackrc"
	"lfrc/internal/timeline"
	"lfrc/internal/watchdog"
)

// Value is the payload type carried by the structures.
type Value = uint64

// MaxValue is the largest storable payload: the two top cell bits belong to
// the software-MCAS engine and one more to the deque's claim marker.
const MaxValue Value = 1<<61 - 1

// Engine selects the DCAS substrate.
type Engine int

// Engines.
const (
	// EngineLocking simulates the hardware DCAS the paper assumes with an
	// address-striped lock table. Fast and simple; its lock-freedom is a
	// property of the modeled hardware, not the simulation.
	EngineLocking Engine = iota + 1

	// EngineMCAS is a genuinely lock-free software DCAS built from
	// single-word CAS (Harris, Fraser & Pratt, DISC 2002). Slower per
	// operation, but every step is implemented with commodity atomics.
	EngineMCAS
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineLocking:
		return "locking"
	case EngineMCAS:
		return "mcas"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Option configures a System.
type Option interface {
	apply(*config)
}

type config struct {
	engine         Engine
	reclaimer      Reclaimer
	rcStrategy     RCStrategy
	maxHeapWords   uint64
	destroyBudget  int
	poisonCheck    bool
	allocShards    int
	observer       bool
	sampleEvery    int
	lifecycleEvery int
	auditEvery     time.Duration
	contention     bool
	faultPlan      string
	faultSeed      uint64
	pressure       HeapPressurePolicy
	timeline       bool
	timelineOpts   TimelineOptions
	watchdog       WatchdogOptions
	censusRoots    []func() []uint32
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithEngine selects the DCAS engine. The default is EngineLocking.
func WithEngine(e Engine) Option {
	return optionFunc(func(c *config) { c.engine = e })
}

// WithMaxHeapWords caps the simulated heap at n 64-bit words. The default
// is 64Mi words (512 MiB).
func WithMaxHeapWords(n uint64) Option {
	return optionFunc(func(c *config) { c.maxHeapWords = n })
}

// WithIncrementalDestroy bounds the reclamation work done by any single
// pointer-release to budget objects, deferring the remainder (the paper's §7
// suggestion for avoiding pauses when dropping large structures). Call
// System.DrainZombies from a maintenance loop to finish deferred work.
func WithIncrementalDestroy(budget int) Option {
	return optionFunc(func(c *config) { c.destroyBudget = budget })
}

// WithPoisonCheck toggles allocation-time verification that recycled memory
// was not written after being freed. On by default; disable only for
// benchmarking allocator overhead.
func WithPoisonCheck(on bool) Option {
	return optionFunc(func(c *config) { c.poisonCheck = on })
}

// WithAllocShards sets how many shards the heap's allocator is striped
// across. The default is runtime.GOMAXPROCS at heap creation; values are
// clamped to [1, 64]. Pin it explicitly when benchmark runs must be
// comparable across machines.
func WithAllocShards(n int) Option {
	return optionFunc(func(c *config) { c.allocShards = n })
}

// System bundles a manual heap, a DCAS engine, the LFRC operations, and the
// backup tracing collector. All methods are safe for concurrent use unless
// noted otherwise.
type System struct {
	heap      *mem.Heap
	engine    dcas.Engine
	rc        *core.RC
	collector *gctrace.Collector
	obs       *obs.Recorder  // nil unless WithObserver/WithTraceSampling
	ct        *contend.Table // nil unless WithContention

	// ledger and auditor are nil unless WithLifecycleLedger /
	// WithLifecycleAudit; every consumer below is nil-safe.
	ledger  *lifecycle.Ledger
	auditor *lifecycle.Auditor

	// fj is the fault injector; nil unless WithFaultPlan armed at least
	// one injection point. pressure and deg implement graceful heap-
	// pressure degradation (see WithHeapPressurePolicy).
	fj       *fault.Injector
	pressure HeapPressurePolicy
	deg      degradedCounters

	// tl is the telemetry timeline sampler; nil unless WithTimeline.
	// Every consumer is nil-safe.
	tl *timeline.Sampler

	// wd is the health watchdog engine riding the sampler's cadence; nil
	// unless the timeline is on and the watchdog not disabled. Every
	// consumer is nil-safe. wdTicks/wdProbeEvery pace the sampled census
	// probe (single writer: the sampler's capture path); bundleBusy keeps
	// incident-triggered bundle captures from overlapping.
	wd           *watchdog.Engine
	wdTicks      uint64
	wdProbeEvery int
	bundleBusy   atomic.Bool

	// faultPlan retains the WithFaultPlan source string for the diagnostic
	// bundle manifest (the injector itself keeps only the parsed form).
	faultPlan string

	// censusRoots are the caller-registered extra root sources (see
	// WithCensusRoots); lastCensus caches the most recent graph census so
	// /metrics can report it without re-walking the heap per scrape.
	censusRoots []func() []uint32
	lastCensus  atomic.Pointer[census.Snapshot]

	// Each structure family's heap types are registered lazily on first
	// use; a system that never creates a Queue never pays for (or exposes)
	// the queue's type table entries.
	snarkTypes typeReg[snark.Types]
	queueTypes typeReg[msqueue.Types]
	stackTypes typeReg[stackrc.Types]
	setTypes   typeReg[dlist.Types]
}

// typeReg lazily registers one structure family's heap types. The zero value
// is ready; get runs register exactly once per System and caches the result
// (including a registration error, which every subsequent constructor call
// then reports).
type typeReg[T any] struct {
	once sync.Once
	ts   T
	err  error
}

func (tr *typeReg[T]) get(h *mem.Heap, register func(*mem.Heap) (T, error)) (T, error) {
	tr.once.Do(func() { tr.ts, tr.err = register(h) })
	return tr.ts, tr.err
}

// New creates a System.
func New(opts ...Option) (*System, error) {
	cfg := config{
		engine:       EngineLocking,
		reclaimer:    ReclaimerLFRC,
		rcStrategy:   RCFigure2,
		maxHeapWords: 64 << 20,
		poisonCheck:  true,
		sampleEvery:  -1,
		faultSeed:    1,
	}
	for _, o := range opts {
		o.apply(&cfg)
	}
	switch cfg.reclaimer {
	case ReclaimerLFRC, ReclaimerEpoch:
	default:
		return nil, fmt.Errorf("lfrc: unknown reclaimer %v", cfg.reclaimer)
	}
	switch cfg.rcStrategy {
	case RCFigure2, RCSplit:
	default:
		return nil, fmt.Errorf("lfrc: unknown rc strategy %v", cfg.rcStrategy)
	}

	plan, err := fault.Parse(cfg.faultPlan)
	if err != nil {
		return nil, fmt.Errorf("lfrc: fault plan: %w", err)
	}
	fj := fault.NewInjector(plan, cfg.faultSeed)

	var rec *obs.Recorder
	if cfg.observer {
		var obsOpts []obs.Option
		if cfg.sampleEvery >= 0 {
			obsOpts = append(obsOpts, obs.WithSampleEvery(cfg.sampleEvery))
		}
		rec = obs.New(obsOpts...)
	}

	var ct *contend.Table
	if cfg.contention {
		ct = contend.New()
		// Sampled wasted-ns contributions are scaled by the recorder's op
		// sampling interval so the profile estimates un-sampled totals.
		if n := rec.SampleEvery(); n > 1 {
			ct.SetOpScale(n)
		}
		rec.SetAgg(ct)
	}

	var led *lifecycle.Ledger
	if cfg.lifecycleEvery > 0 {
		led = lifecycle.New(lifecycle.WithSampleEvery(cfg.lifecycleEvery - 1))
		// A sampling-off ledger can never claim an object, so it detaches
		// from the recorder entirely: "disabled" costs exactly the nil
		// sink check. Install before the recorder is shared: SetSink is
		// not synchronized.
		if cfg.lifecycleEvery > 1 {
			rec.SetSink(led)
		}
	}

	h := mem.NewHeap(
		mem.WithMaxWords(cfg.maxHeapWords),
		mem.WithPoisonCheck(cfg.poisonCheck),
		mem.WithAllocShards(cfg.allocShards),
		mem.WithObserver(rec),
		mem.WithFault(fj),
	)
	var e dcas.Engine
	switch cfg.engine {
	case EngineLocking:
		e = dcas.NewLocking(h)
	case EngineMCAS:
		e = dcas.NewMCAS(h)
	default:
		return nil, fmt.Errorf("lfrc: unknown engine %v", cfg.engine)
	}

	var rcOpts []core.Option
	rcOpts = append(rcOpts, core.WithReclaimerKind(cfg.reclaimer.kind()))
	rcOpts = append(rcOpts, core.WithStrategyKind(cfg.rcStrategy.kind()))
	if cfg.destroyBudget > 0 {
		rcOpts = append(rcOpts, core.WithIncrementalDestroy(cfg.destroyBudget))
	}
	rcOpts = append(rcOpts, core.WithObserver(rec))
	if ct != nil {
		rcOpts = append(rcOpts, core.WithContention(ct))
	}
	if fj != nil {
		rcOpts = append(rcOpts, core.WithFault(fj))
	}

	s := &System{
		heap:        h,
		engine:      e,
		rc:          core.New(h, e, rcOpts...),
		collector:   gctrace.New(h),
		obs:         rec,
		ct:          ct,
		ledger:      led,
		fj:          fj,
		pressure:    cfg.pressure,
		faultPlan:   cfg.faultPlan,
		censusRoots: cfg.censusRoots,
	}
	// The backup collector walks pointer cells directly, so it must read
	// them through the RC strategy's link codec (split packs a weight stash
	// into the word; sweeping a dying link must return that stash).
	s.collector.SetDecoder(s.rc.DecodeLink)
	if led != nil {
		var audOpts []lifecycle.AuditOption
		if cfg.auditEvery > 0 {
			audOpts = append(audOpts, lifecycle.WithInterval(cfg.auditEvery))
		}
		s.auditor = lifecycle.NewAuditor(led, heapProbe{h}, rec, audOpts...)
		if cfg.auditEvery > 0 {
			s.auditor.Start()
		}
	}
	if cfg.timeline {
		// Last: the capture closure reads every subsystem built above. The
		// watchdog comes first only because the sampler's on-sample hook
		// feeds it; it is always on with the timeline unless disabled.
		if !cfg.watchdog.Disabled {
			s.newWatchdog(cfg.watchdog)
		}
		s.newTimeline(cfg.timelineOpts)
	}
	return s, nil
}

// heapProbe adapts the heap to the auditor's Probe interface.
type heapProbe struct{ h *mem.Heap }

func (p heapProbe) RCOf(ref uint32) uint64 {
	r := mem.Ref(ref)
	if r == 0 || !p.h.InArena(r) {
		return 0
	}
	rc := p.h.Load(p.h.RCAddr(r))
	if rc >= mem.Poison {
		// A poisoned rc cell means the slot is freed (or corrupted);
		// either way it is not a live stuck count.
		return 0
	}
	return rc
}

func (p heapProbe) Freed(ref uint32) bool {
	r := mem.Ref(ref)
	return r != 0 && p.h.InArena(r) && p.h.IsFreed(r)
}

func (p heapProbe) AdvanceEpoch() uint64 { return p.h.AdvanceEpoch() }

// Close stops the system's background machinery (the lifecycle auditor
// started by WithLifecycleAudit and the timeline sampler started by
// WithTimeline). It is safe to call on any System, multiple times; the
// system's data structures remain usable afterwards, and the timeline ring
// stays readable.
func (s *System) Close() {
	if s.auditor != nil {
		s.auditor.Stop()
	}
	s.tl.Stop()
}

// Trace is the flight recorder's dump: the surviving ring events in sequence
// order, per-operation latency digests, the retry distribution, and any
// captured postmortems.
type Trace = obs.Trace

// Trace dumps the flight recorder. Without WithObserver it returns a zero
// Trace. The events are the newest survivors of fixed-size per-stripe rings;
// use it for flight-recorder style postmortems, not exhaustive logs.
func (s *System) Trace() Trace { return s.obs.Trace() }

// Postmortems returns the violation captures recorded so far: one entry per
// detected poison corruption (see mem's recycle-time check) or audit
// violation, each naming the offending ref and carrying the trailing flight
// events that touched it.
func (s *System) Postmortems() []obs.Postmortem { return s.obs.Postmortems() }

// ObjectTimeline is one sampled object's ledgered event chain: allocation,
// every rc-manipulating touch with before/after counts and goroutine
// attribution, zombie transit, and free. See WithLifecycleLedger. (The name
// System.Timeline belongs to the telemetry timeline — see WithTimeline.)
type ObjectTimeline = lifecycle.Timeline

// Violation is one invariant breach flagged by the lifecycle auditor,
// carrying the offending object's timeline. See WithLifecycleAudit.
type Violation = lifecycle.Violation

// Population is a point-in-time heap population report bucketed by reference
// count, with age distribution for ledger-tracked objects. (The name
// System.Census belongs to the object-graph census — see WithCensusRoots.)
type Population = lifecycle.Census

// ObjectTimeline returns the lifecycle timeline for ref — the live
// incarnation if the object is still tracked, else its most recent completed
// incarnation. Without WithLifecycleLedger (or for unsampled objects) it
// reports false.
func (s *System) ObjectTimeline(ref uint32) (ObjectTimeline, bool) { return s.ledger.Timeline(ref) }

// Population walks the heap and reports its population bucketed by reference
// count, plus the lifecycle ledger's tracked-object age distribution. The
// walk is online (no stop-the-world): counts are a triage snapshot, not an
// exact quiescent census. For the full object-graph census — reachability,
// cycle leaks, retained sizes — see System.Census.
func (s *System) Population() Population { return lifecycle.TakeCensus(s.heap, s.ledger) }

// AuditPass runs one lifecycle audit pass immediately and returns the
// violations newly flagged by it. It requires WithLifecycleLedger (the
// auditor exists whenever the ledger does; WithLifecycleAudit additionally
// runs passes on a background interval) and returns nil without one.
func (s *System) AuditPass() []Violation {
	if s.auditor == nil {
		return nil
	}
	return s.auditor.RunPass()
}

// Violations returns the lifecycle violations flagged so far, oldest first
// (bounded retention; each was also captured as a postmortem when the
// flight recorder is enabled).
func (s *System) Violations() []Violation {
	if s.auditor == nil {
		return nil
	}
	return s.auditor.Violations()
}

// ContentionReport is the contention observatory's merged snapshot: every
// (cell, op) accumulator ranked by wasted work, plus the decaying top-K
// heatmap. See WithContention.
type ContentionReport = contend.Report

// ContentionReport snapshots the contention observatory. Without
// WithContention it returns an empty report.
func (s *System) ContentionReport() ContentionReport { return s.ct.Snapshot() }

// WriteContentionReport writes the human-readable contention report (the
// same text served on /debug/lfrc/contention).
func (s *System) WriteContentionReport(w io.Writer) { s.ct.WriteReport(w) }

// WriteContentionProfile writes the contention profile as a gzipped
// pprof-compatible protobuf (the same bytes served on
// /debug/lfrc/contention.pb.gz): samples are (cell, op) pairs weighted by
// attributed failures and wasted nanoseconds, so
//
//	go tool pprof -top contention.pb.gz
//
// ranks the hot cells directly.
func (s *System) WriteContentionProfile(w io.Writer) error { return s.ct.WriteProfile(w) }

// WriteChromeTrace exports the flight recorder's trace and the lifecycle
// ledger's timelines as Chrome trace_event JSON, loadable in Perfetto or
// chrome://tracing: one track per goroutine, instants for flight-ring
// events, and one async span per sampled object lifetime.
func (s *System) WriteChromeTrace(w io.Writer) error {
	return lifecycle.WriteChromeTrace(w, s.Trace(), s.ledger)
}

// EngineName reports which DCAS engine the system runs on.
func (s *System) EngineName() string { return s.engine.Name() }

// Stats returns the system's unified accounting snapshot: heap counters,
// LFRC operation counters, the sharded allocator's per-shard state, and the
// deferred-reclamation backlog, in one structure with stable JSON tags.
// Individual counters are read atomically but the snapshot as a whole is
// racy; take it at quiescence when exact cross-counter invariants matter.
func (s *System) Stats() Stats {
	ms := s.heap.AllocStats()
	a := AllocStats{
		Shards:           ms.Shards,
		FillTarget:       ms.FillTarget,
		GlobalFreeListed: ms.GlobalFreeListed,
		PerShard:         make([]ShardStats, len(ms.PerShard)),
	}
	for i, sh := range ms.PerShard {
		a.PerShard[i] = ShardStats(sh)
	}
	st := Stats{
		Engine:     s.engine.Name(),
		RCStrategy: s.rc.StrategyName(),
		Heap:       HeapStats(s.heap.Stats()),
		RC:         RCStats(s.rc.Stats()),
		Alloc:   a,
		Reclaim: ReclaimStats(s.rc.Reclaimer().Stats()),
		Zombies: s.rc.ZombieCount(),
	}
	if s.ledger != nil {
		st.Lifecycle = LifecycleStats{
			Enabled:        true,
			SampleEvery:    s.ledger.SampleEvery(),
			Tracked:        s.ledger.TrackedCount(),
			SampledObjects: s.ledger.SampledObjects(),
			SkippedFull:    s.ledger.SkippedFull(),
			AuditPasses:    s.auditor.Passes(),
			Violations:     s.auditor.ViolationCount(),
			Epoch:          s.heap.Epoch(),
		}
	}
	if s.fj != nil {
		st.Fault = FaultStats{
			Enabled:  true,
			Seed:     s.fj.Seed(),
			Injected: s.fj.Fires(),
			Points:   s.fj.Stats(),
		}
	}
	st.Degraded = DegradedStats{
		PolicyEnabled:  s.pressure.MaxRetries > 0,
		Retries:        s.deg.retries.Load(),
		Recoveries:     s.deg.recoveries.Load(),
		Exhaustions:    s.deg.exhaustions.Load(),
		ZombiesDrained: s.deg.zombiesDrained.Load(),
	}
	st.Timeline = s.tl.Stats()
	st.Watchdog = s.wd.Stats()
	return st
}

// Stats is the one-call snapshot of everything the system counts.
type Stats struct {
	// Engine names the DCAS engine the system runs on.
	Engine string `json:"engine"`

	// RCStrategy names the reference-count strategy in effect
	// ("figure2" or "split"; see WithRCStrategy).
	RCStrategy string `json:"rc_strategy"`

	// Heap is the heap accounting (allocs, frees, liveness, corruption
	// detectors).
	Heap HeapStats `json:"heap"`

	// RC is the LFRC operation counters.
	RC RCStats `json:"rc"`

	// Alloc describes the sharded allocator's configuration and per-shard
	// activity.
	Alloc AllocStats `json:"alloc"`

	// Reclaim is the reclamation backend's accounting (see
	// WithReclamation).
	Reclaim ReclaimStats `json:"reclaim"`

	// Zombies is the number of objects currently awaiting deferred
	// reclamation — the backend's pending backlog (see
	// WithIncrementalDestroy, WithReclamation).
	Zombies int64 `json:"zombies"`

	// Lifecycle is the diagnosis layer's accounting; zero unless the
	// system was built WithLifecycleLedger / WithLifecycleAudit.
	Lifecycle LifecycleStats `json:"lifecycle"`

	// Fault is the fault injector's accounting; zero unless the system was
	// built WithFaultPlan.
	Fault FaultStats `json:"fault"`

	// Degraded counts heap-pressure degraded-mode activity (see
	// WithHeapPressurePolicy).
	Degraded DegradedStats `json:"degraded"`

	// Timeline is the telemetry timeline sampler's accounting; zero unless
	// the system was built WithTimeline.
	Timeline TimelineStats `json:"timeline"`

	// Watchdog is the health watchdog's accounting; zero unless a watchdog
	// is riding the timeline (see WithWatchdog).
	Watchdog WatchdogStats `json:"watchdog"`
}

// LifecycleStats is the lifecycle ledger and auditor accounting.
type LifecycleStats struct {
	// Enabled reports whether a lifecycle ledger is installed.
	Enabled bool `json:"enabled"`

	// SampleEvery is the object sampling interval (1 = every object,
	// 0 = installed but off).
	SampleEvery int `json:"sample_every"`

	// Tracked is the number of currently tracked objects; SampledObjects
	// counts objects ever selected; SkippedFull counts selections dropped
	// because the track table was at capacity.
	Tracked        int64  `json:"tracked"`
	SampledObjects uint64 `json:"sampled_objects"`
	SkippedFull    uint64 `json:"skipped_full"`

	// AuditPasses counts invariant-auditor sweeps; Violations counts
	// breaches ever flagged; Epoch is the reclamation epoch (one tick
	// per pass).
	AuditPasses uint64 `json:"audit_passes"`
	Violations  uint64 `json:"violations"`
	Epoch       uint64 `json:"epoch"`
}

// HeapStats mirrors the heap's accounting snapshot. See the field docs on
// the internal mem.Stats for precise semantics.
type HeapStats struct {
	Allocs        int64 `json:"allocs"`
	Frees         int64 `json:"frees"`
	Recycles      int64 `json:"recycles"`
	LiveObjects   int64 `json:"live_objects"`
	LiveWords     int64 `json:"live_words"`
	HighWater     int64 `json:"high_water"`
	DoubleFrees   int64 `json:"double_frees"`
	Corruptions   int64 `json:"corruptions"`
	AllocFailures int64 `json:"alloc_failures"`
}

// RCStats mirrors the LFRC operation counters.
type RCStats struct {
	Allocs            int64 `json:"allocs"`
	Frees             int64 `json:"frees"`
	FreeErrors        int64 `json:"free_errors"`
	Loads             int64 `json:"loads"`
	LoadRetries       int64 `json:"load_retries"`
	Stores            int64 `json:"stores"`
	Copies            int64 `json:"copies"`
	CASOps            int64 `json:"cas_ops"`
	DCASOps           int64 `json:"dcas_ops"`
	Destroys          int64 `json:"destroys"`
	ZombiePushes      int64 `json:"zombie_pushes"`
	PoisonedRCUpdates int64 `json:"poisoned_rc_updates"`

	// WeightRefills and ExtMerges are split-strategy traffic: stash
	// refills and external-count merges (always 0 under figure2). See
	// WithRCStrategy.
	WeightRefills int64 `json:"weight_refills"`
	ExtMerges     int64 `json:"ext_merges"`
}

// AllocStats mirrors the sharded allocator's snapshot. See the internal
// mem.AllocStats for precise semantics.
type AllocStats struct {
	Shards           int          `json:"shards"`
	FillTarget       int          `json:"fill_target"`
	GlobalFreeListed int64        `json:"global_free_listed"`
	PerShard         []ShardStats `json:"per_shard"`
}

// ShardStats describes one allocation shard's activity and holdings.
type ShardStats struct {
	Allocs     int64 `json:"allocs"`
	Frees      int64 `json:"frees"`
	Recycles   int64 `json:"recycles"`
	FreeListed int64 `json:"free_listed"`
	ChunkFree  int64 `json:"chunk_free"`
}

// DrainZombies finishes up to max deferred reclamations (0 = all): objects
// parked by an incremental-destroy budget (WithIncrementalDestroy) or held in
// the epoch backend's limbo bins (WithReclamation). It returns the number of
// objects freed.
func (s *System) DrainZombies(max int) int { return s.rc.DrainZombies(max) }

// ZombieCount reports how many objects currently await deferred reclamation
// (the reclamation backend's pending backlog).
func (s *System) ZombieCount() int64 { return s.rc.ZombieCount() }

// Collect runs the stop-the-world backup tracing collector (paper §7) and
// returns how many unreachable objects it reclaimed. Every structure created
// from this System is automatically registered as a root until its Close.
// The system must be quiescent: no operations may run concurrently.
func (s *System) Collect() CollectResult {
	return CollectResult(s.collector.Collect())
}

// CollectResult reports one backup-collection pass.
type CollectResult struct {
	// Marked is the number of reachable objects.
	Marked int

	// Freed is the number of unreachable objects reclaimed (cyclic
	// garbage, with correct clients).
	Freed int

	// RCAdjusted counts survivor reference counts fixed up because swept
	// garbage pointed at them.
	RCAdjusted int
}

// Audit verifies, at quiescence, that every live object's reference count
// equals the number of pointers to it (heap pointers plus one per open
// structure handle). It returns human-readable violation descriptions; an
// empty result means the counts are exact. The system must be quiescent.
// When the flight recorder is enabled, each violation also captures a
// postmortem (the trailing flight events touching the offending ref),
// retrievable with Postmortems.
func (s *System) Audit() []string {
	vs := check.AuditRCDecoded(s.heap, s.collector.Roots(), s.rc.DecodeLink)
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
		s.obs.CapturePostmortem("audit: "+v.String(), uint32(v.Ref))
	}
	return out
}
