package lfrc

import (
	"fmt"
	"sync"

	"lfrc/internal/check"
	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/dlist"
	"lfrc/internal/gctrace"
	"lfrc/internal/mem"
	"lfrc/internal/msqueue"
	"lfrc/internal/snark"
	"lfrc/internal/stackrc"
)

// Value is the payload type carried by the structures.
type Value = uint64

// MaxValue is the largest storable payload: the two top cell bits belong to
// the software-MCAS engine and one more to the deque's claim marker.
const MaxValue Value = 1<<61 - 1

// Engine selects the DCAS substrate.
type Engine int

// Engines.
const (
	// EngineLocking simulates the hardware DCAS the paper assumes with an
	// address-striped lock table. Fast and simple; its lock-freedom is a
	// property of the modeled hardware, not the simulation.
	EngineLocking Engine = iota + 1

	// EngineMCAS is a genuinely lock-free software DCAS built from
	// single-word CAS (Harris, Fraser & Pratt, DISC 2002). Slower per
	// operation, but every step is implemented with commodity atomics.
	EngineMCAS
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineLocking:
		return "locking"
	case EngineMCAS:
		return "mcas"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Option configures a System.
type Option interface {
	apply(*config)
}

type config struct {
	engine        Engine
	maxHeapWords  uint64
	destroyBudget int
	poisonCheck   bool
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithEngine selects the DCAS engine. The default is EngineLocking.
func WithEngine(e Engine) Option {
	return optionFunc(func(c *config) { c.engine = e })
}

// WithMaxHeapWords caps the simulated heap at n 64-bit words. The default
// is 64Mi words (512 MiB).
func WithMaxHeapWords(n uint64) Option {
	return optionFunc(func(c *config) { c.maxHeapWords = n })
}

// WithIncrementalDestroy bounds the reclamation work done by any single
// pointer-release to budget objects, deferring the remainder (the paper's §7
// suggestion for avoiding pauses when dropping large structures). Call
// System.DrainZombies from a maintenance loop to finish deferred work.
func WithIncrementalDestroy(budget int) Option {
	return optionFunc(func(c *config) { c.destroyBudget = budget })
}

// WithPoisonCheck toggles allocation-time verification that recycled memory
// was not written after being freed. On by default; disable only for
// benchmarking allocator overhead.
func WithPoisonCheck(on bool) Option {
	return optionFunc(func(c *config) { c.poisonCheck = on })
}

// System bundles a manual heap, a DCAS engine, the LFRC operations, and the
// backup tracing collector. All methods are safe for concurrent use unless
// noted otherwise.
type System struct {
	heap      *mem.Heap
	engine    dcas.Engine
	rc        *core.RC
	collector *gctrace.Collector

	snarkTypes snark.Types
	queueTypes msqueue.Types
	stackTypes stackrc.Types

	setTypesMu sync.Mutex
	setTypes   *dlist.Types
}

// setTypesOnce registers the set's heap types on first use.
func (s *System) setTypesOnce() (dlist.Types, error) {
	s.setTypesMu.Lock()
	defer s.setTypesMu.Unlock()
	if s.setTypes != nil {
		return *s.setTypes, nil
	}
	ts, err := dlist.RegisterTypes(s.heap)
	if err != nil {
		return dlist.Types{}, err
	}
	s.setTypes = &ts
	return ts, nil
}

// New creates a System.
func New(opts ...Option) (*System, error) {
	cfg := config{
		engine:       EngineLocking,
		maxHeapWords: 64 << 20,
		poisonCheck:  true,
	}
	for _, o := range opts {
		o.apply(&cfg)
	}

	h := mem.NewHeap(mem.WithMaxWords(cfg.maxHeapWords), mem.WithPoisonCheck(cfg.poisonCheck))
	var e dcas.Engine
	switch cfg.engine {
	case EngineLocking:
		e = dcas.NewLocking(h)
	case EngineMCAS:
		e = dcas.NewMCAS(h)
	default:
		return nil, fmt.Errorf("lfrc: unknown engine %v", cfg.engine)
	}

	var rcOpts []core.Option
	if cfg.destroyBudget > 0 {
		rcOpts = append(rcOpts, core.WithIncrementalDestroy(cfg.destroyBudget))
	}

	s := &System{
		heap:      h,
		engine:    e,
		rc:        core.New(h, e, rcOpts...),
		collector: gctrace.New(h),
	}
	var err error
	if s.snarkTypes, err = snark.RegisterTypes(h); err != nil {
		return nil, err
	}
	if s.queueTypes, err = msqueue.RegisterTypes(h); err != nil {
		return nil, err
	}
	if s.stackTypes, err = stackrc.RegisterTypes(h); err != nil {
		return nil, err
	}
	return s, nil
}

// EngineName reports which DCAS engine the system runs on.
func (s *System) EngineName() string { return s.engine.Name() }

// HeapStats snapshots the heap accounting: live objects and words, allocs,
// frees, recycling, and the corruption detectors.
func (s *System) HeapStats() HeapStats { return HeapStats(s.heap.Stats()) }

// RCStats snapshots the LFRC operation counters.
func (s *System) RCStats() RCStats { return RCStats(s.rc.Stats()) }

// HeapStats mirrors the heap's accounting snapshot. See the field docs on
// the internal mem.Stats for precise semantics.
type HeapStats struct {
	Allocs, Frees, Recycles           int64
	LiveObjects, LiveWords, HighWater int64
	DoubleFrees, Corruptions          int64
	AllocFailures                     int64
}

// RCStats mirrors the LFRC operation counters.
type RCStats struct {
	Allocs, Frees, FreeErrors                                     int64
	Loads, LoadRetries, Stores, Copies, CASOps, DCASOps, Destroys int64
	ZombiePushes, PoisonedRCUpdates                               int64
}

// DrainZombies finishes up to max deferred reclamations (0 = all) when the
// system was built WithIncrementalDestroy. It returns the number of objects
// freed.
func (s *System) DrainZombies(max int) int { return s.rc.DrainZombies(max) }

// ZombieCount reports how many objects currently await deferred reclamation.
func (s *System) ZombieCount() int64 { return s.rc.ZombieCount() }

// Collect runs the stop-the-world backup tracing collector (paper §7) and
// returns how many unreachable objects it reclaimed. Every structure created
// from this System is automatically registered as a root until its Close.
// The system must be quiescent: no operations may run concurrently.
func (s *System) Collect() CollectResult {
	return CollectResult(s.collector.Collect())
}

// CollectResult reports one backup-collection pass.
type CollectResult struct {
	// Marked is the number of reachable objects.
	Marked int

	// Freed is the number of unreachable objects reclaimed (cyclic
	// garbage, with correct clients).
	Freed int

	// RCAdjusted counts survivor reference counts fixed up because swept
	// garbage pointed at them.
	RCAdjusted int
}

// Audit verifies, at quiescence, that every live object's reference count
// equals the number of pointers to it (heap pointers plus one per open
// structure handle). It returns human-readable violation descriptions; an
// empty result means the counts are exact. The system must be quiescent.
func (s *System) Audit() []string {
	vs := check.AuditRC(s.heap, s.collector.Roots())
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}
