package lfrc_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"lfrc"
)

// newTimelineSystem builds a system with every subsystem the capture path
// reads enabled and the timeline in manual mode, plus a deque with some
// traffic so the counters are non-trivial.
func newTimelineSystem(t *testing.T, extra ...lfrc.Option) *lfrc.System {
	t.Helper()
	opts := append([]lfrc.Option{
		lfrc.WithTimeline(lfrc.TimelineOptions{Manual: true}),
		lfrc.WithTraceSampling(1),
		lfrc.WithContention(true),
		lfrc.WithReclamation(lfrc.ReclaimerEpoch),
	}, extra...)
	sys, err := lfrc.New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(sys.Close)
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := lfrc.Value(1); i <= 32; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
	}
	for i := 0; i < 16; i++ {
		if _, ok := d.PopLeft(); !ok {
			t.Fatal("PopLeft: empty")
		}
	}
	d.Close()
	return sys
}

// TestTimelineJSONSchemaGolden locks the timeline.json key surface the same
// way stats_keys.golden locks Stats: cmd/lfrctop and external dashboards
// parse this document, so a key rename must surface as a golden diff.
//
// Regenerate with: UPDATE_GOLDEN=1 go test -run TestTimelineJSONSchemaGolden .
func TestTimelineJSONSchemaGolden(t *testing.T) {
	sys := newTimelineSystem(t)
	sys.CaptureTimelineSample()
	sys.CaptureTimelineSample()

	var buf bytes.Buffer
	if err := sys.WriteTimelineJSON(&buf); err != nil {
		t.Fatalf("WriteTimelineJSON: %v", err)
	}
	var tree map[string]any
	if err := json.Unmarshal(buf.Bytes(), &tree); err != nil {
		t.Fatalf("invalid timeline.json: %v", err)
	}
	if v, ok := tree["schema_version"].(float64); !ok || int(v) != 1 {
		t.Errorf("schema_version = %v, want 1", tree["schema_version"])
	}

	keys := keyPaths("", any(tree))
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "timeline_schema.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("timeline.json key set changed.\n--- got ---\n%s--- want (%s) ---\n%s"+
			"If the change is intentional, regenerate with UPDATE_GOLDEN=1 and call it out in review.",
			got, golden, want)
	}
}

// TestTimelineCapturesSystemActivity drives real structure traffic between
// manual captures and checks the deltas land in the right fields.
func TestTimelineCapturesSystemActivity(t *testing.T) {
	sys := newTimelineSystem(t)
	sys.CaptureTimelineSample() // baseline

	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := lfrc.Value(1); i <= 64; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
	}
	sys.CaptureTimelineSample()

	var samples []lfrc.TimelineSample
	for sm := range sys.Timeline() {
		samples = append(samples, sm)
	}
	if len(samples) != 2 {
		t.Fatalf("retained %d samples, want 2", len(samples))
	}
	last := samples[1]
	if last.HeapAllocs < 64 {
		t.Errorf("interval HeapAllocs = %d, want >= 64 (one per pushed node)", last.HeapAllocs)
	}
	if last.RCDCAS <= 0 {
		t.Errorf("interval RCDCAS = %d, want > 0", last.RCDCAS)
	}
	if last.Ops() <= 0 || last.DurNS <= 0 || last.Rate() <= 0 {
		t.Errorf("ops/dur/rate = %d/%d/%v, want all > 0", last.Ops(), last.DurNS, last.Rate())
	}
	if last.HeapLiveObjects <= 0 {
		t.Errorf("live-objects gauge = %d, want > 0", last.HeapLiveObjects)
	}
	if last.Shards <= 0 {
		t.Errorf("Shards = %d, want > 0", last.Shards)
	}
	st := sys.TimelineStats()
	if st.Captures != 2 || st.Retained != 2 {
		t.Errorf("TimelineStats = %+v, want 2 captures retained", st)
	}
	d.Close()
}

// TestTimelineLimboSeries checks the acceptance-criteria shape: under the
// epoch reclaimer, the pending-limbo series must rise while garbage is
// retired and drain back down — visible across the captured intervals.
func TestTimelineLimboSeries(t *testing.T) {
	sys := newTimelineSystem(t)

	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	maxPending := int64(0)
	for round := 0; round < 20; round++ {
		for i := lfrc.Value(1); i <= 16; i++ {
			if err := d.PushRight(i); err != nil {
				t.Fatalf("PushRight: %v", err)
			}
		}
		for i := 0; i < 16; i++ {
			if _, ok := d.PopLeft(); !ok {
				t.Fatal("PopLeft: empty")
			}
		}
		sys.CaptureTimelineSample()
	}
	for sm := range sys.Timeline() {
		if sm.ReclaimPending > maxPending {
			maxPending = sm.ReclaimPending
		}
	}
	if maxPending == 0 {
		t.Fatal("limbo-depth series never rose above zero under the epoch reclaimer")
	}
	sys.DrainZombies(0)
	sys.CaptureTimelineSample()
	var last lfrc.TimelineSample
	for sm := range sys.Timeline() {
		last = sm
	}
	if last.ReclaimPending >= maxPending {
		t.Errorf("limbo series did not drain: final pending %d, peak %d", last.ReclaimPending, maxPending)
	}
	d.Close()
}

// TestTimelineBackgroundSampling exercises the WithTimeline background
// goroutine end to end at a fast cadence.
func TestTimelineBackgroundSampling(t *testing.T) {
	sys, err := lfrc.New(lfrc.WithTimeline(lfrc.TimelineOptions{Interval: time.Millisecond, Slots: 32}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	deadline := time.Now().Add(2 * time.Second)
	for sys.TimelineStats().Captures < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sys.TimelineStats().Captures; got < 5 {
		t.Fatalf("background sampler captured %d in 2s, want >= 5", got)
	}
	sys.Close()
	after := sys.TimelineStats().Captures
	time.Sleep(5 * time.Millisecond)
	if got := sys.TimelineStats().Captures; got != after {
		t.Errorf("sampler still running after Close: %d -> %d", after, got)
	}
}

// TestTimelineDisabledIsInert checks every surface answers sanely without
// WithTimeline.
func TestTimelineDisabledIsInert(t *testing.T) {
	sys, err := lfrc.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	sys.CaptureTimelineSample() // no-op
	for range sys.Timeline() {
		t.Fatal("disabled timeline yielded a sample")
	}
	if st := sys.TimelineStats(); st != (lfrc.TimelineStats{}) {
		t.Errorf("disabled TimelineStats = %+v, want zero", st)
	}
	var buf bytes.Buffer
	if err := sys.WriteTimelineJSON(&buf); err != nil {
		t.Fatalf("WriteTimelineJSON: %v", err)
	}
	var doc struct {
		Enabled       bool `json:"enabled"`
		SchemaVersion int  `json:"schema_version"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid disabled document: %v", err)
	}
	if doc.Enabled || doc.SchemaVersion != 1 {
		t.Errorf("disabled doc = %+v", doc)
	}
}

// TestTimelineDebugEndpoints checks the mux serves both timeline encodings.
func TestTimelineDebugEndpoints(t *testing.T) {
	sys := newTimelineSystem(t)
	sys.CaptureTimelineSample()
	mux := lfrc.NewDebugMux(func() *lfrc.System { return sys })

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/lfrc/timeline.json", nil))
	if rec.Code != 200 || !bytes.Contains(rec.Body.Bytes(), []byte(`"schema_version": 1`)) {
		t.Errorf("timeline.json: code %d body %.120s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/lfrc/timeline.csv", nil))
	if rec.Code != 200 || !strings.HasPrefix(rec.Body.String(), "seq,ts,dur_ns") {
		t.Errorf("timeline.csv: code %d body %.120s", rec.Code, rec.Body.String())
	}
}
