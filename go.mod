module lfrc

go 1.23
