module lfrc

go 1.22
