// Benchmarks: one per experiment table in EXPERIMENTS.md (E1..E9, A1..A3).
// They exercise the same code paths as cmd/lfrcbench but in testing.B form,
// so `go test -bench=. -benchmem` regenerates the per-operation numbers;
// shape metrics (leaks, corruption counts) are attached via b.ReportMetric.
package lfrc_test

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"lfrc"
	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/gcdep"
	"lfrc/internal/gctrace"
	"lfrc/internal/mem"
	"lfrc/internal/snark"
	"lfrc/internal/valois"
	"lfrc/internal/watchdog"
	"lfrc/internal/workload"
)

// benchEnv builds a heap+engine+rc with the snark types registered.
func benchEnv(b *testing.B, kind workload.EngineKind) *workload.Env {
	b.Helper()
	return workload.NewEnv(kind)
}

// BenchmarkE1SafeVsNaiveLoad measures the two load protocols under pointer
// churn and reports corruption events per operation (the shape metric:
// safe == 0, naive > 0).
func BenchmarkE1SafeVsNaiveLoad(b *testing.B) {
	for _, naive := range []bool{false, true} {
		name := "safe"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			env := benchEnv(b, workload.EngineLocking)
			rc, h := env.RC, env.Heap
			holder, _ := rc.NewObject(env.CellType)
			a := h.FieldAddr(holder, 0)
			seed, _ := rc.NewObject(env.SnarkTypes.SNode)
			rc.StoreAlloc(a, seed)

			var n int
			inject := func(mem.Ref) {
				n++
				if n%4 != 0 {
					return
				}
				if fresh, err := rc.NewObject(env.SnarkTypes.SNode); err == nil {
					rc.StoreAlloc(a, fresh)
				}
			}
			rc.LoadHook = inject
			rc.NaiveHook = inject

			var dst mem.Ref
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rc.Destroy(dst)
				dst = 0
				if naive {
					rc.NaiveLoad(a, &dst)
				} else {
					rc.Load(a, &dst)
				}
			}
			b.StopTimer()
			rc.Destroy(dst)
			poisoned := rc.Stats().PoisonedRCUpdates
			b.ReportMetric(float64(poisoned)/float64(b.N), "poisoned/op")
		})
	}
}

// BenchmarkE2LeakFreedom performs random deque operations and reports the
// objects left live after teardown (must be 0).
func BenchmarkE2LeakFreedom(b *testing.B) {
	env := benchEnv(b, workload.EngineLocking)
	d, err := env.NewDeque()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch rng.Intn(4) {
		case 0:
			_ = d.PushLeft(uint64(i + 1))
		case 1:
			_ = d.PushRight(uint64(i + 1))
		case 2:
			d.PopLeft()
		default:
			d.PopRight()
		}
	}
	b.StopTimer()
	d.Close()
	b.ReportMetric(float64(env.Heap.Stats().LiveObjects), "leaked")
	b.ReportMetric(float64(env.Heap.Stats().Corruptions), "corruptions")
}

// BenchmarkE3FootprintShrink runs grow/drain waves and reports the resting
// footprint ratio after draining (must be 1.0: footprint fully returns).
func BenchmarkE3FootprintShrink(b *testing.B) {
	b.Run("lfrc", func(b *testing.B) {
		env := benchEnv(b, workload.EngineLocking)
		q, err := env.NewQueue()
		if err != nil {
			b.Fatal(err)
		}
		resting := env.Heap.Stats().LiveWords
		const wave = 500
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < wave; j++ {
				_ = q.Enqueue(uint64(j + 1))
			}
			for {
				if _, ok := q.Dequeue(); !ok {
					break
				}
			}
		}
		b.StopTimer()
		final := env.Heap.Stats().LiveWords
		b.ReportMetric(float64(final)/float64(resting), "resting-ratio")
		q.Close()
	})
	b.Run("valois", func(b *testing.B) {
		env := benchEnv(b, workload.EngineLocking)
		q, err := env.NewValoisQueue()
		if err != nil {
			b.Fatal(err)
		}
		resting := env.Heap.Stats().LiveWords
		const wave = 500
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < wave; j++ {
				_ = q.Enqueue(uint64(j + 1))
			}
			for {
				if _, ok := q.Dequeue(); !ok {
					break
				}
			}
		}
		b.StopTimer()
		final := env.Heap.Stats().LiveWords
		b.ReportMetric(float64(final)/float64(resting), "resting-ratio")
		q.Close()
	})
}

// BenchmarkE4StallProgress measures deque operation cost while another
// worker is parked mid-operation (lock-free: finite; mutex: the benchmark
// would deadlock, which is the claim — so the mutex row measures ops while
// the lock is *not* held by the victim, and the stall behaviour itself is
// covered by the E4 table and TestE4Shape).
func BenchmarkE4StallProgress(b *testing.B) {
	env := benchEnv(b, workload.EngineLocking)
	park := make(chan struct{})
	armed := make(chan struct{}, 1)
	armed <- struct{}{}
	var parked chan struct{} = make(chan struct{})
	d, err := env.NewDeque(snark.WithBeforeDCAS(func() {
		select {
		case <-armed:
			close(parked)
			<-park
		default:
		}
	}))
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = d.PushRight(1) }() // victim parks
	<-parked

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.PushLeft(uint64(i + 2))
		d.PopRight()
	}
	b.StopTimer()
	close(park)
}

// BenchmarkE5Throughput compares the deque implementations under parallel
// mixed load.
func BenchmarkE5Throughput(b *testing.B) {
	impls := []struct {
		name string
		mk   func(b *testing.B) (workload.Deque, func())
	}{
		{name: "lfrc-locking", mk: func(b *testing.B) (workload.Deque, func()) {
			env := benchEnv(b, workload.EngineLocking)
			d, err := env.NewDeque()
			if err != nil {
				b.Fatal(err)
			}
			return workload.SnarkAdapter{D: d}, d.Close
		}},
		{name: "lfrc-mcas", mk: func(b *testing.B) (workload.Deque, func()) {
			env := benchEnv(b, workload.EngineMCAS)
			d, err := env.NewDeque()
			if err != nil {
				b.Fatal(err)
			}
			return workload.SnarkAdapter{D: d}, d.Close
		}},
		{name: "gcdep", mk: func(b *testing.B) (workload.Deque, func()) {
			return workload.GcdepAdapter{D: gcdep.New()}, func() {}
		}},
		{name: "mutex", mk: func(b *testing.B) (workload.Deque, func()) {
			return workload.NewMutexDeque(), func() {}
		}},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			d, cleanup := impl.mk(b)
			for i := 0; i < 128; i++ {
				_ = d.PushRight(uint64(i + 1))
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(rand.Int63()))
				v := uint64(1)
				for pb.Next() {
					switch rng.Intn(4) {
					case 0:
						_ = d.PushLeft(v)
						v++
					case 1:
						_ = d.PushRight(v)
						v++
					case 2:
						d.PopLeft()
					default:
						d.PopRight()
					}
				}
			})
			b.StopTimer()
			cleanup()
		})
	}
}

// BenchmarkE6MicroOps measures each LFRC operation on both engines.
func BenchmarkE6MicroOps(b *testing.B) {
	for _, kind := range workload.Engines {
		env := benchEnv(b, kind)
		rc, h := env.RC, env.Heap
		holder, _ := rc.NewObject(env.CellType)
		a := h.FieldAddr(holder, 0)
		holder2, _ := rc.NewObject(env.CellType)
		a2 := h.FieldAddr(holder2, 0)
		obj, _ := rc.NewObject(env.SnarkTypes.SNode)
		rc.Store(a, obj)
		rc.Store(a2, obj)

		b.Run("Load/"+kind.String(), func(b *testing.B) {
			var dst mem.Ref
			for i := 0; i < b.N; i++ {
				rc.Load(a, &dst)
			}
			rc.Destroy(dst)
		})
		b.Run("Store/"+kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rc.Store(a, obj)
			}
		})
		b.Run("Copy/"+kind.String(), func(b *testing.B) {
			var local mem.Ref
			for i := 0; i < b.N; i++ {
				rc.Copy(&local, obj)
			}
			rc.Destroy(local)
		})
		b.Run("CAS/"+kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rc.CAS(a, obj, obj)
			}
		})
		b.Run("DCAS/"+kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rc.DCAS(a, a2, obj, obj, obj, obj)
			}
		})
		b.Run("NewDestroy/"+kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, _ := rc.NewObject(env.SnarkTypes.SNode)
				rc.Destroy(n)
			}
		})
	}
}

// BenchmarkE7CycleLeak runs push+pop pairs under both sentinel conventions
// and reports objects leaked per pop.
func BenchmarkE7CycleLeak(b *testing.B) {
	for _, cyclic := range []bool{false, true} {
		name := "null-sentinels"
		if cyclic {
			name = "self-pointer-sentinels"
		}
		b.Run(name, func(b *testing.B) {
			env := benchEnv(b, workload.EngineLocking)
			var opts []snark.Option
			if cyclic {
				opts = append(opts, snark.WithCyclicSentinels())
			}
			d, err := env.NewDeque(opts...)
			if err != nil {
				b.Fatal(err)
			}
			// Keep the deque non-trivial so pops take the general
			// (sentinel-installing) path, not the one-node fast path.
			for i := 0; i < 8; i++ {
				_ = d.PushLeft(uint64(i + 1))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = d.PushRight(uint64(i + 1))
				d.PopRight()
			}
			b.StopTimer()
			d.Close()
			b.ReportMetric(float64(env.Heap.Stats().LiveObjects)/float64(b.N), "leaked/op")
		})
	}
}

// BenchmarkE8BackupTrace measures the backup tracing collector reclaiming
// the sentinel cycles one churn round strands.
func BenchmarkE8BackupTrace(b *testing.B) {
	env := benchEnv(b, workload.EngineLocking)
	d, err := env.NewDeque(snark.WithCyclicSentinels())
	if err != nil {
		b.Fatal(err)
	}
	gc := gctrace.New(env.Heap)
	gc.AddRoot(d.Anchor())

	// Keep the deque non-trivial so pops strand sentinel cycles.
	for i := 0; i < 8; i++ {
		_ = d.PushLeft(uint64(i + 1))
	}
	const churn = 200
	freed := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < churn; j++ {
			_ = d.PushRight(uint64(j + 1))
			d.PopRight()
		}
		b.StartTimer()
		res := gc.Collect()
		freed += res.Freed
	}
	b.StopTimer()
	b.ReportMetric(float64(freed)/float64(b.N), "freed/collect")
}

// BenchmarkE9Equivalence mirrors one operation on the GC-dependent and
// LFRC deques and reports mismatches (must be 0).
func BenchmarkE9Equivalence(b *testing.B) {
	env := benchEnv(b, workload.EngineLocking)
	ld, err := env.NewDeque()
	if err != nil {
		b.Fatal(err)
	}
	gd := gcdep.New()
	rng := rand.New(rand.NewSource(7))
	mismatches := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint64(i + 1)
		switch rng.Intn(4) {
		case 0:
			_ = ld.PushLeft(v)
			gd.PushLeft(v)
		case 1:
			_ = ld.PushRight(v)
			gd.PushRight(v)
		case 2:
			lv, lok := ld.PopLeft()
			gv, gok := gd.PopLeft()
			if lok != gok || lv != gv {
				mismatches++
			}
		default:
			lv, lok := ld.PopRight()
			gv, gok := gd.PopRight()
			if lok != gok || lv != gv {
				mismatches++
			}
		}
	}
	b.StopTimer()
	ld.Close()
	b.ReportMetric(float64(mismatches), "mismatches")
}

// BenchmarkA1EngineAblation measures the raw engine primitives head to head.
func BenchmarkA1EngineAblation(b *testing.B) {
	for _, kind := range workload.Engines {
		h := mem.NewHeap()
		var e dcas.Engine
		if kind == workload.EngineMCAS {
			e = dcas.NewMCAS(h)
		} else {
			e = dcas.NewLocking(h)
		}
		cellT := h.MustRegisterType(mem.TypeDesc{Name: "cells", NumFields: 2})
		r := h.MustAlloc(cellT)
		a0, a1 := h.FieldAddr(r, 0), h.FieldAddr(r, 1)

		b.Run("CAS/"+kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.CAS(a0, uint64(i), uint64(i+1))
			}
			e.Write(a0, 0)
		})
		b.Run("DCAS/"+kind.String(), func(b *testing.B) {
			e.Write(a0, 0)
			e.Write(a1, 0)
			for i := 0; i < b.N; i++ {
				e.DCAS(a0, a1, uint64(i), uint64(i), uint64(i+1), uint64(i+1))
			}
		})
		b.Run("Read/"+kind.String(), func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += e.Read(a0)
			}
			_ = sink
		})
	}
}

// BenchmarkA2IncrementalDestroy measures dropping a 10k-node chain eagerly
// vs with a reclamation budget; ns/op is the pause the caller experiences.
func BenchmarkA2IncrementalDestroy(b *testing.B) {
	const chain = 10_000
	for _, budget := range []int{0, 64} {
		name := "eager"
		if budget > 0 {
			name = "budget64"
		}
		b.Run(name, func(b *testing.B) {
			var rcOpts []core.Option
			if budget > 0 {
				rcOpts = append(rcOpts, core.WithIncrementalDestroy(budget))
			}
			env := workload.NewEnv(workload.EngineLocking, rcOpts...)
			rc, h := env.RC, env.Heap
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var head mem.Ref
				for j := 0; j < chain; j++ {
					p, err := rc.NewObject(env.SnarkTypes.SNode)
					if err != nil {
						b.Fatal(err)
					}
					rc.StoreAlloc(h.FieldAddr(p, 0), head)
					head = p
				}
				b.StartTimer()
				rc.Destroy(head) // the measured pause
				b.StopTimer()
				rc.DrainZombies(0)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkSetOps measures the DCAS-based sorted set against a mutex-map
// baseline (the set extension; see set.go).
func BenchmarkSetOps(b *testing.B) {
	b.Run("lfrc-set", func(b *testing.B) {
		sys, err := lfrc.New()
		if err != nil {
			b.Fatal(err)
		}
		s, err := sys.NewSet()
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := uint64(rng.Intn(256))
			switch rng.Intn(3) {
			case 0:
				_, _ = s.Insert(k)
			case 1:
				s.Delete(k)
			default:
				s.Contains(k)
			}
		}
		b.StopTimer()
		s.Close()
	})
	b.Run("mutex-map", func(b *testing.B) {
		var (
			mu sync.Mutex
			m  = make(map[uint64]bool)
		)
		rng := rand.New(rand.NewSource(3))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := uint64(rng.Intn(256))
			mu.Lock()
			switch rng.Intn(3) {
			case 0:
				m[k] = true
			case 1:
				delete(m, k)
			default:
				_ = m[k]
			}
			mu.Unlock()
		}
	})
}

// BenchmarkFacadeDeque measures the public API end to end.
func BenchmarkFacadeDeque(b *testing.B) {
	sys, err := lfrc.New()
	if err != nil {
		b.Fatal(err)
	}
	d, err := sys.NewDeque()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.PushRight(uint64(i + 1))
		d.PopLeft()
	}
	b.StopTimer()
	d.Close()
}

// BenchmarkValoisVsLFRCQueue compares per-op cost of the two reclamation
// schemes on the same queue algorithm.
func BenchmarkValoisVsLFRCQueue(b *testing.B) {
	b.Run("lfrc", func(b *testing.B) {
		env := benchEnv(b, workload.EngineLocking)
		q, err := env.NewQueue()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = q.Enqueue(uint64(i + 1))
			q.Dequeue()
		}
		b.StopTimer()
		q.Close()
	})
	b.Run("valois", func(b *testing.B) {
		h := mem.NewHeap()
		q, err := valois.New(h, valois.MustRegisterTypes(h))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = q.Enqueue(uint64(i + 1))
			q.Dequeue()
		}
		b.StopTimer()
		q.Close()
	})
}

// BenchmarkAllocShards measures the allocator itself — the experiment A3
// fast path — on an alloc/free mix over three size classes, with the shard
// count pinned to 1 (the pre-sharding layout: one free list per size, every
// bump on the global cursor) and to GOMAXPROCS, serially and under
// RunParallel.
func BenchmarkAllocShards(b *testing.B) {
	newTypes := func(h *mem.Heap) []mem.TypeID {
		return []mem.TypeID{
			h.MustRegisterType(mem.TypeDesc{Name: "a2", NumFields: 2, PtrFields: []int{0}}),
			h.MustRegisterType(mem.TypeDesc{Name: "a5", NumFields: 5, PtrFields: []int{0, 1}}),
			h.MustRegisterType(mem.TypeDesc{Name: "a13", NumFields: 13}),
		}
	}
	body := func(b *testing.B, h *mem.Heap, types []mem.TypeID, next func() bool) {
		var local []mem.Ref
		i := 0
		for next() {
			if len(local) < 32 || i%3 != 0 {
				r, err := h.Alloc(types[i%len(types)])
				if err != nil {
					b.Error(err)
					return
				}
				local = append(local, r)
			} else {
				r := local[len(local)-1]
				local = local[:len(local)-1]
				if err := h.Free(r); err != nil {
					b.Error(err)
					return
				}
			}
			i++
		}
		for _, r := range local {
			_ = h.Free(r)
		}
	}
	for _, shards := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("shards=%d/g1", shards), func(b *testing.B) {
			h := mem.NewHeap(mem.WithAllocShards(shards))
			types := newTypes(h)
			i := 0
			body(b, h, types, func() bool { i++; return i <= b.N })
		})
		b.Run(fmt.Sprintf("shards=%d/g%d", shards, runtime.GOMAXPROCS(0)), func(b *testing.B) {
			h := mem.NewHeap(mem.WithAllocShards(shards))
			types := newTypes(h)
			b.RunParallel(func(pb *testing.PB) {
				body(b, h, types, pb.Next)
			})
			st := h.Stats()
			if st.Corruptions != 0 || st.DoubleFrees != 0 {
				b.Fatalf("heap damage: %d corruptions, %d double frees", st.Corruptions, st.DoubleFrees)
			}
		})
	}
}

// BenchmarkObserverOverhead measures the flight recorder's cost on the
// balanced deque mix (experiment O1's workload) across observer modes:
// baseline (no recorder), disabled (recorder installed, sampling off — the
// fixed hot-path cost), the default 1-in-64 sampling, and full recording.
// The acceptance bar is that disabled stays within a few percent of
// baseline; compare with benchstat over -count=10 runs.
func BenchmarkObserverOverhead(b *testing.B) {
	modes := []struct {
		name string
		opts []lfrc.Option
	}{
		{"baseline", nil},
		{"disabled", []lfrc.Option{lfrc.WithTraceSampling(0)}},
		{"sampled64", []lfrc.Option{lfrc.WithTraceSampling(64)}},
		{"full", []lfrc.Option{lfrc.WithTraceSampling(1)}},
	}
	for _, m := range modes {
		b.Run(m.name+"/g1", func(b *testing.B) {
			sys, err := lfrc.New(m.opts...)
			if err != nil {
				b.Fatal(err)
			}
			d, err := sys.NewDeque()
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			for i := 0; i < 64; i++ {
				_ = d.PushRight(lfrc.Value(i + 1))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch i % 4 {
				case 0:
					_ = d.PushLeft(lfrc.Value(i + 1))
				case 1:
					_ = d.PushRight(lfrc.Value(i + 1))
				case 2:
					d.PopLeft()
				case 3:
					d.PopRight()
				}
			}
		})
		b.Run(fmt.Sprintf("%s/g%d", m.name, runtime.GOMAXPROCS(0)), func(b *testing.B) {
			sys, err := lfrc.New(m.opts...)
			if err != nil {
				b.Fatal(err)
			}
			d, err := sys.NewDeque()
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			for i := 0; i < 64; i++ {
				_ = d.PushRight(lfrc.Value(i + 1))
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					switch i % 4 {
					case 0:
						_ = d.PushLeft(lfrc.Value(i + 1))
					case 1:
						_ = d.PushRight(lfrc.Value(i + 1))
					case 2:
						d.PopLeft()
					case 3:
						d.PopRight()
					}
					i++
				}
			})
		})
	}
}

// benchDequeMix drives the balanced deque mix on a fresh system built with
// opts, serially or under RunParallel — the shared body of the telemetry
// overhead benchmarks below.
func benchDequeMix(b *testing.B, parallel bool, opts ...lfrc.Option) {
	sys, err := lfrc.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	d, err := sys.NewDeque()
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 64; i++ {
		_ = d.PushRight(lfrc.Value(i + 1))
	}
	step := func(i int) {
		switch i % 4 {
		case 0:
			_ = d.PushLeft(lfrc.Value(i + 1))
		case 1:
			_ = d.PushRight(lfrc.Value(i + 1))
		case 2:
			d.PopLeft()
		case 3:
			d.PopRight()
		}
	}
	b.ResetTimer()
	if parallel {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				step(i)
				i++
			}
		})
	} else {
		for i := 0; i < b.N; i++ {
			step(i)
		}
	}
}

// BenchmarkLifecycleLedger measures the lifecycle ledger's cost on the
// balanced deque mix (experiment O2's workload): no ledger, the default
// 1-in-64 sampling, and full (every object tracked). Compare with benchstat
// over -count=10 runs.
func BenchmarkLifecycleLedger(b *testing.B) {
	modes := []struct {
		name string
		opts []lfrc.Option
	}{
		{"baseline", nil},
		{"sampled64", []lfrc.Option{lfrc.WithLifecycleLedger(64)}},
		{"full", []lfrc.Option{lfrc.WithLifecycleLedger(1)}},
	}
	for _, m := range modes {
		b.Run(m.name+"/g1", func(b *testing.B) { benchDequeMix(b, false, m.opts...) })
		b.Run(fmt.Sprintf("%s/g%d", m.name, runtime.GOMAXPROCS(0)), func(b *testing.B) {
			benchDequeMix(b, true, m.opts...)
		})
	}
}

// BenchmarkContention measures the contention observatory's cost on the
// balanced deque mix (experiment O3's workload). The observer mode isolates
// the tax: WithContention implies the recorder, so its delta over
// observer64 alone is the observatory's own cost — failed-attempt
// attribution plus the wasted-ns aggregation tap. Under g1 there is no
// contention, so only the fixed per-retry-loop nil checks are visible.
func BenchmarkContention(b *testing.B) {
	modes := []struct {
		name string
		opts []lfrc.Option
	}{
		{"baseline", nil},
		{"observer64", []lfrc.Option{lfrc.WithTraceSampling(64)}},
		{"contention", []lfrc.Option{lfrc.WithContention(true), lfrc.WithTraceSampling(64)}},
	}
	for _, m := range modes {
		b.Run(m.name+"/g1", func(b *testing.B) { benchDequeMix(b, false, m.opts...) })
		b.Run(fmt.Sprintf("%s/g%d", m.name, runtime.GOMAXPROCS(0)), func(b *testing.B) {
			benchDequeMix(b, true, m.opts...)
		})
	}
}

// BenchmarkTimelineCapture measures one telemetry snapshot against a live
// system carrying real state (allocations, RC traffic, contention table,
// observer histograms) — the cost the background sampler pays every
// interval. The capture path is designed to allocate nothing and stay under
// 1µs/snapshot, and the benchmark fails outright past that bound so
// bench-smoke gates it (experiment O4).
func BenchmarkTimelineCapture(b *testing.B) {
	sys, err := lfrc.New(
		lfrc.WithTimeline(lfrc.TimelineOptions{Manual: true}),
		lfrc.WithContention(true), lfrc.WithTraceSampling(64),
	)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer sys.Close()
	d, err := sys.NewDeque()
	if err != nil {
		b.Fatalf("NewDeque: %v", err)
	}
	for i := 0; i < 256; i++ {
		if err := d.PushRight(lfrc.Value(i)); err != nil {
			b.Fatalf("PushRight: %v", err)
		}
	}
	for i := 0; i < 128; i++ {
		d.PopLeft()
	}

	// Warm the capture path (first-touch of the ring slots, histogram
	// buckets) so the budget judges the steady-state cost the sampler
	// actually pays every interval, even under bench-smoke's -benchtime=1x.
	for i := 0; i < 16; i++ {
		sys.CaptureTimelineSample()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.CaptureTimelineSample()
	}
	b.StopTimer()

	// The budget check takes the best of a few fixed-size batches rather
	// than the b.N average: a scheduler preemption inside a tiny -benchtime
	// run must not fail the gate, while a real capture-path regression (a
	// full contention-table scan, an allocation) slows every batch and
	// still trips it.
	// Batches are kept short (~15µs) so on busy shared hardware at least
	// one lands between preemptions.
	best := time.Duration(1 << 62)
	for batch := 0; batch < 16; batch++ {
		const per = 16
		start := time.Now()
		for i := 0; i < per; i++ {
			sys.CaptureTimelineSample()
		}
		if d := time.Since(start) / per; d < best {
			best = d
		}
	}
	if best > time.Microsecond {
		b.Fatalf("timeline capture took %v/snapshot at best, budget is 1µs", best)
	}
}

// BenchmarkWatchdogQuietPath measures one watchdog rule evaluation over a
// healthy sample — the incremental cost the always-on watchdog adds to every
// timeline capture (experiment O6 measures the end-to-end overhead). The
// quiet path must stay allocation-free: a nonzero allocs/op here means a rule
// closure started boxing its evidence.
func BenchmarkWatchdogQuietPath(b *testing.B) {
	eng := watchdog.New(watchdog.Options{})
	var in watchdog.Input
	in.Sample.DurNS = int64(100 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Sample.Seq++
		in.Sample.TS += in.Sample.DurNS
		eng.Observe(&in)
	}
	b.StopTimer()
	if st := eng.Stats(); st.Firings != 0 {
		b.Fatalf("quiet-path benchmark fired %d incidents", st.Firings)
	}
}

// TestMain gives the parallel benchmarks a few schedulable threads even on
// single-CPU CI machines.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}
