package lfrc

import (
	"fmt"

	"lfrc/internal/reclaim"
)

// Reclaimer selects the reclamation backend: the policy that turns "this
// object's reference count reached zero" into "this object's memory is
// reusable". Count-zero objects are already unreachable under the LFRC
// invariants, so the choice is policy (when and in what batches memory
// returns), never safety. See DESIGN.md §3.10.
type Reclaimer int

// Reclamation backends.
const (
	// ReclaimerLFRC is the paper's scheme: objects are destroyed eagerly
	// when their count hits zero, except that an incremental-destroy budget
	// (WithIncrementalDestroy) caps the work per release and parks the
	// remainder on the zombie stack (paper §7).
	ReclaimerLFRC Reclaimer = iota + 1

	// ReclaimerEpoch releases a retired object's edges immediately but
	// defers its free into per-epoch limbo bins, releasing a bin only
	// once it is two epoch advances old — the grace-period batching of
	// epoch-based reclamation. Frees leave the releasing operation's
	// critical path at the price of a standing limbo backlog; drain it
	// with System.DrainZombies at quiescence.
	ReclaimerEpoch
)

// String implements fmt.Stringer.
func (r Reclaimer) String() string {
	switch r {
	case ReclaimerLFRC:
		return "lfrc"
	case ReclaimerEpoch:
		return "epoch"
	default:
		return fmt.Sprintf("Reclaimer(%d)", int(r))
	}
}

// ParseReclaimer resolves a backend name ("lfrc" or "epoch", as printed by
// Reclaimer.String) to its Reclaimer value. It is the inverse of String and
// the canonical way for command-line tools to accept a -reclaim flag;
// Reclaimer also implements flag.Value, so flag.Var(&rec, "reclaim", ...)
// works directly.
func ParseReclaimer(s string) (Reclaimer, error) {
	switch s {
	case "lfrc":
		return ReclaimerLFRC, nil
	case "epoch":
		return ReclaimerEpoch, nil
	default:
		return 0, unknownNameError("reclaimer", s, "lfrc", "epoch")
	}
}

// Set implements flag.Value: together with String it lets a Reclaimer
// variable be bound straight to a command-line flag.
func (r *Reclaimer) Set(s string) error {
	v, err := ParseReclaimer(s)
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// kind maps the public enum onto the internal backend selector.
func (r Reclaimer) kind() reclaim.Kind {
	if r == ReclaimerEpoch {
		return reclaim.KindEpoch
	}
	return reclaim.KindLFRC
}

// WithReclamation selects the reclamation backend. The default is
// ReclaimerLFRC, the paper-faithful scheme. Both backends run under the same
// structures, fault points (reclaim.*), lifecycle auditor, and metrics, so
// policies can be compared on identical workloads (experiment R2).
func WithReclamation(r Reclaimer) Option {
	return optionFunc(func(c *config) { c.reclaimer = r })
}

// ReclaimerName reports which reclamation backend the system runs on.
func (s *System) ReclaimerName() string { return s.rc.Reclaimer().Name() }

// ReclaimStats is the reclamation backend's accounting snapshot.
type ReclaimStats struct {
	// Backend names the reclamation backend ("lfrc", "epoch").
	Backend string `json:"backend"`

	// Retired counts objects handed to the backend at count zero; Freed
	// counts objects actually freed, including cascaded descendants
	// discovered by the destroy recursion. Parked counts pushes onto deferred storage
	// (the zombie stack or a limbo bin); Pending is the current deferred
	// backlog (also exported as Stats.Zombies).
	Retired int64 `json:"retired"`
	Freed   int64 `json:"freed"`
	Parked  int64 `json:"parked"`
	Pending int64 `json:"pending"`

	// Drains counts explicit DrainZombies calls (maintenance or
	// degraded-mode).
	Drains int64 `json:"drains"`

	// Epoch is the epoch backend's reclamation epoch and EpochAdvances its
	// advance count; both stay zero on the lfrc backend.
	Epoch         uint64 `json:"epoch"`
	EpochAdvances int64  `json:"epoch_advances"`
}
