package lfrc_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lfrc"
)

// muxRoster is the published debug surface: every endpoint the index page
// must list, with the Content-Type each must declare on GET. The pprof
// subtree is roster-listed but exempt from the read-only method audit (its
// symbol endpoint legitimately accepts POST).
var muxRoster = []struct {
	path        string
	contentType string // required prefix of the GET Content-Type
	attachment  bool   // must set a Content-Disposition: attachment header
	pprofExempt bool   // outside the GET/HEAD-only contract
}{
	{path: "/metrics", contentType: "text/plain"},
	{path: "/debug/lfrc/stats", contentType: "application/json"},
	{path: "/debug/lfrc/trace", contentType: "application/json"},
	{path: "/debug/lfrc/trace.json", contentType: "application/json", attachment: true},
	{path: "/debug/lfrc/timeline.json", contentType: "application/json"},
	{path: "/debug/lfrc/timeline.csv", contentType: "text/csv"},
	{path: "/debug/lfrc/contention", contentType: "text/plain"},
	{path: "/debug/lfrc/contention.pb.gz", contentType: "application/octet-stream", attachment: true},
	{path: "/debug/lfrc/census.json", contentType: "application/json"},
	{path: "/debug/lfrc/census.pb.gz", contentType: "application/octet-stream", attachment: true},
	{path: "/debug/lfrc/census.dot", contentType: "text/vnd.graphviz"},
	{path: "/debug/lfrc/incidents.json", contentType: "application/json"},
	{path: "/debug/lfrc/bundle.tar.gz", contentType: "application/gzip", attachment: true},
	{path: "/debug/vars", contentType: "application/json"},
	{path: "/debug/pprof/", contentType: "text/html", pprofExempt: true},
}

func newMuxServer(t *testing.T) (*httptest.Server, *lfrc.System) {
	t.Helper()
	sys, err := lfrc.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(sys.Close)
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := lfrc.Value(1); i <= 8; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
	}
	srv := httptest.NewServer(lfrc.NewDebugMux(func() *lfrc.System { return sys }))
	t.Cleanup(srv.Close)
	return srv, sys
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp, body
}

// TestDebugMuxIndexListsEveryEndpoint: /debug/lfrc/ is the human entry point;
// every published endpoint must appear on it, and unregistered subpaths must
// 404 rather than silently serving the index.
func TestDebugMuxIndexListsEveryEndpoint(t *testing.T) {
	srv, _ := newMuxServer(t)

	resp, body := get(t, srv, "/debug/lfrc/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/lfrc/ = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, ep := range muxRoster {
		if !strings.Contains(string(body), ep.path) {
			t.Errorf("index page does not list %s", ep.path)
		}
	}

	resp, _ = get(t, srv, "/debug/lfrc/no-such-endpoint")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /debug/lfrc/no-such-endpoint = %d, want 404", resp.StatusCode)
	}
}

// TestDebugMuxCensusEndpoints drives the three census renderings end to end.
func TestDebugMuxCensusEndpoints(t *testing.T) {
	srv, _ := newMuxServer(t)

	resp, body := get(t, srv, "/debug/lfrc/census.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("census.json = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("census.json Content-Type = %q", ct)
	}
	var snap struct {
		SchemaVersion int    `json:"schema_version"`
		Backend       string `json:"backend"`
		LiveObjects   int64  `json:"live_objects"`
		Reachable     struct {
			Objects int64 `json:"objects"`
		} `json:"reachable"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("census.json invalid: %v", err)
	}
	if snap.SchemaVersion != 1 || snap.Backend == "" || snap.LiveObjects == 0 {
		t.Errorf("census.json = %+v", snap)
	}
	if snap.Reachable.Objects != snap.LiveObjects {
		t.Errorf("healthy deque heap not fully reachable: %+v", snap)
	}

	resp, body = get(t, srv, "/debug/lfrc/census.pb.gz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("census.pb.gz = %d", resp.StatusCode)
	}
	if len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
		t.Errorf("census.pb.gz is not gzip (got % x...)", body[:min(4, len(body))])
	}

	resp, body = get(t, srv, "/debug/lfrc/census.dot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("census.dot = %d", resp.StatusCode)
	}
	if !strings.HasPrefix(string(body), "digraph census") {
		t.Errorf("census.dot does not render DOT:\n%s", body)
	}

	// A node cap below the heap size must refuse with 422, not truncate
	// silently.
	resp, _ = get(t, srv, "/debug/lfrc/census.dot?max=1")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("census.dot?max=1 = %d, want 422", resp.StatusCode)
	}
}

// TestDebugMuxWithoutSystem: every endpoint (but not the index) answers 503
// when no system is published.
func TestDebugMuxWithoutSystem(t *testing.T) {
	srv := httptest.NewServer(lfrc.NewDebugMux(func() *lfrc.System { return nil }))
	defer srv.Close()
	for _, ep := range []string{"/metrics", "/debug/lfrc/census.json", "/debug/lfrc/stats"} {
		resp, err := srv.Client().Get(srv.URL + ep)
		if err != nil {
			t.Fatalf("GET %s: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s = %d with no system, want 503", ep, resp.StatusCode)
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/debug/lfrc/")
	if err != nil {
		t.Fatalf("GET index: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("index = %d with no system, want 200 (it documents the surface)", resp.StatusCode)
	}
}

// TestDebugMuxRoster audits every published endpoint in one table: GET must
// answer 200 with the declared Content-Type (and Content-Disposition for
// downloads), and any write method must bounce with 405 + Allow — the whole
// debug surface is read-only. Only the pprof subtree is exempt.
func TestDebugMuxRoster(t *testing.T) {
	srv, _ := newMuxServer(t)

	for _, ep := range muxRoster {
		resp, _ := get(t, srv, ep.path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", ep.path, resp.StatusCode)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, ep.contentType) {
			t.Errorf("GET %s Content-Type = %q, want prefix %q", ep.path, ct, ep.contentType)
		}
		if ep.attachment && !strings.HasPrefix(resp.Header.Get("Content-Disposition"), "attachment") {
			t.Errorf("GET %s Content-Disposition = %q, want attachment",
				ep.path, resp.Header.Get("Content-Disposition"))
		}

		if ep.pprofExempt {
			continue
		}
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, err := http.NewRequest(method, srv.URL+ep.path, strings.NewReader("x"))
			if err != nil {
				t.Fatalf("NewRequest %s %s: %v", method, ep.path, err)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatalf("%s %s: %v", method, ep.path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, ep.path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s Allow = %q, want %q", method, ep.path, allow, "GET, HEAD")
			}
		}
	}
}
