package lfrc

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"

	"lfrc/internal/hist"
	"lfrc/internal/obs"
)

// WriteMetrics writes the system's current counters in the Prometheus text
// exposition format: LFRC operation counters, heap gauges and corruption
// detectors, the deferred-reclamation backlog, and — when the flight recorder
// is enabled — the retry distribution and per-operation latency histograms.
func (s *System) WriteMetrics(w io.Writer) {
	st := s.Stats()

	writeHeader(w, "lfrc_ops_total", "counter", "LFRC operations by kind.")
	writeLabeled(w, "lfrc_ops_total", "op", "load", st.RC.Loads)
	writeLabeled(w, "lfrc_ops_total", "op", "store", st.RC.Stores)
	writeLabeled(w, "lfrc_ops_total", "op", "copy", st.RC.Copies)
	writeLabeled(w, "lfrc_ops_total", "op", "cas", st.RC.CASOps)
	writeLabeled(w, "lfrc_ops_total", "op", "dcas", st.RC.DCASOps)
	writeLabeled(w, "lfrc_ops_total", "op", "destroy", st.RC.Destroys)

	writeHeader(w, "lfrc_load_retries_total", "counter", "LFRCLoad DCAS retries.")
	writeScalar(w, "lfrc_load_retries_total", st.RC.LoadRetries)

	writeHeader(w, "lfrc_rc_strategy", "gauge", "Reference-count strategy in effect (always 1; the label carries the name).")
	writeLabeled(w, "lfrc_rc_strategy", "strategy", st.RCStrategy, 1)
	writeHeader(w, "lfrc_rc_weight_refills_total", "counter", "Split-strategy stash refills: Loads that fell back to the Figure-2-shaped DCAS because a link's external count ran dry (always 0 under figure2).")
	writeLabeled(w, "lfrc_rc_weight_refills_total", "strategy", st.RCStrategy, st.RC.WeightRefills)
	writeHeader(w, "lfrc_rc_ext_merges_total", "counter", "Split-strategy external-count merges: unlinked pointers whose remaining stash was folded back into the object's count word (always 0 under figure2).")
	writeLabeled(w, "lfrc_rc_ext_merges_total", "strategy", st.RCStrategy, st.RC.ExtMerges)

	writeHeader(w, "lfrc_heap_allocs_total", "counter", "Objects allocated.")
	writeScalar(w, "lfrc_heap_allocs_total", st.Heap.Allocs)
	writeHeader(w, "lfrc_heap_frees_total", "counter", "Objects freed.")
	writeScalar(w, "lfrc_heap_frees_total", st.Heap.Frees)
	writeHeader(w, "lfrc_heap_recycles_total", "counter", "Allocations served from free lists.")
	writeScalar(w, "lfrc_heap_recycles_total", st.Heap.Recycles)
	writeHeader(w, "lfrc_heap_double_frees_total", "counter", "Double frees detected.")
	writeScalar(w, "lfrc_heap_double_frees_total", st.Heap.DoubleFrees)
	writeHeader(w, "lfrc_heap_corruptions_total", "counter", "Poison corruptions detected on recycle.")
	writeScalar(w, "lfrc_heap_corruptions_total", st.Heap.Corruptions)
	writeHeader(w, "lfrc_heap_alloc_failures_total", "counter", "Allocations refused (arena exhausted).")
	writeScalar(w, "lfrc_heap_alloc_failures_total", st.Heap.AllocFailures)

	writeHeader(w, "lfrc_heap_live_objects", "gauge", "Objects currently live.")
	writeScalar(w, "lfrc_heap_live_objects", st.Heap.LiveObjects)
	writeHeader(w, "lfrc_heap_live_words", "gauge", "Words currently live.")
	writeScalar(w, "lfrc_heap_live_words", st.Heap.LiveWords)
	writeHeader(w, "lfrc_heap_high_water_words", "gauge", "Arena high-water mark in words.")
	writeScalar(w, "lfrc_heap_high_water_words", st.Heap.HighWater)
	writeHeader(w, "lfrc_alloc_shards", "gauge", "Allocation shards.")
	writeScalar(w, "lfrc_alloc_shards", int64(st.Alloc.Shards))
	writeHeader(w, "lfrc_alloc_global_free_listed", "gauge", "Slots on the global overflow free lists.")
	writeScalar(w, "lfrc_alloc_global_free_listed", st.Alloc.GlobalFreeListed)

	writeHeader(w, "lfrc_zombie_backlog", "gauge", "Objects awaiting deferred reclamation.")
	writeScalar(w, "lfrc_zombie_backlog", st.Zombies)

	writeHeader(w, "lfrc_reclaim_retired_total", "counter", "Count-zero objects handed to the reclamation backend.")
	writeLabeled(w, "lfrc_reclaim_retired_total", "backend", st.Reclaim.Backend, st.Reclaim.Retired)
	writeHeader(w, "lfrc_reclaim_freed_total", "counter", "Objects freed by the reclamation backend (including cascaded descendants).")
	writeLabeled(w, "lfrc_reclaim_freed_total", "backend", st.Reclaim.Backend, st.Reclaim.Freed)
	writeHeader(w, "lfrc_reclaim_parked_total", "counter", "Objects parked on deferred storage (zombie stack or limbo bins).")
	writeLabeled(w, "lfrc_reclaim_parked_total", "backend", st.Reclaim.Backend, st.Reclaim.Parked)
	writeHeader(w, "lfrc_reclaim_pending", "gauge", "Deferred-reclamation backlog held by the backend.")
	writeLabeled(w, "lfrc_reclaim_pending", "backend", st.Reclaim.Backend, st.Reclaim.Pending)
	writeHeader(w, "lfrc_reclaim_drains_total", "counter", "Explicit drain calls on the reclamation backend.")
	writeLabeled(w, "lfrc_reclaim_drains_total", "backend", st.Reclaim.Backend, st.Reclaim.Drains)
	writeHeader(w, "lfrc_reclaim_epoch", "gauge", "Reclamation epoch (epoch backend; 0 on lfrc).")
	writeLabeled(w, "lfrc_reclaim_epoch", "backend", st.Reclaim.Backend, int64(st.Reclaim.Epoch))
	writeHeader(w, "lfrc_reclaim_epoch_advances_total", "counter", "Epoch advances (epoch backend; 0 on lfrc).")
	writeLabeled(w, "lfrc_reclaim_epoch_advances_total", "backend", st.Reclaim.Backend, st.Reclaim.EpochAdvances)

	writeHeader(w, "lfrc_degraded_retries_total", "counter", "Heap-pressure degraded-mode retry attempts.")
	writeScalar(w, "lfrc_degraded_retries_total", st.Degraded.Retries)
	writeHeader(w, "lfrc_degraded_recoveries_total", "counter", "Operations that recovered on a degraded-mode retry.")
	writeScalar(w, "lfrc_degraded_recoveries_total", st.Degraded.Recoveries)
	writeHeader(w, "lfrc_degraded_exhaustions_total", "counter", "Operations that failed even after the full heap-pressure policy.")
	writeScalar(w, "lfrc_degraded_exhaustions_total", st.Degraded.Exhaustions)
	writeHeader(w, "lfrc_degraded_zombies_drained_total", "counter", "Zombie objects reclaimed by degraded-mode drains.")
	writeScalar(w, "lfrc_degraded_zombies_drained_total", st.Degraded.ZombiesDrained)

	if s.tl != nil {
		writeHeader(w, "lfrc_timeline_interval_ns", "gauge", "Telemetry timeline capture cadence in nanoseconds.")
		writeScalar(w, "lfrc_timeline_interval_ns", st.Timeline.IntervalNS)
		writeHeader(w, "lfrc_timeline_slots", "gauge", "Telemetry timeline ring capacity.")
		writeScalar(w, "lfrc_timeline_slots", int64(st.Timeline.Slots))
		writeHeader(w, "lfrc_timeline_captures_total", "counter", "Timeline samples captured since creation.")
		writeScalar(w, "lfrc_timeline_captures_total", int64(st.Timeline.Captures))
		writeHeader(w, "lfrc_timeline_retained", "gauge", "Timeline samples currently held in the ring.")
		writeScalar(w, "lfrc_timeline_retained", int64(st.Timeline.Retained))
		writeHeader(w, "lfrc_timeline_dropped_total", "counter", "Timeline samples discarded by ring wraparound.")
		writeScalar(w, "lfrc_timeline_dropped_total", int64(st.Timeline.Dropped))
	}

	if s.wd != nil {
		writeHeader(w, "lfrc_watchdog_rules", "gauge", "Health rules the watchdog evaluates per timeline tick.")
		writeScalar(w, "lfrc_watchdog_rules", int64(st.Watchdog.Rules))
		writeHeader(w, "lfrc_watchdog_evals_total", "counter", "Watchdog rule-set evaluations (one per timeline tick).")
		writeScalar(w, "lfrc_watchdog_evals_total", int64(st.Watchdog.Evals))
		writeHeader(w, "lfrc_watchdog_census_probes_total", "counter", "Watchdog ticks that ran the sampled census cross-check.")
		writeScalar(w, "lfrc_watchdog_census_probes_total", int64(st.Watchdog.CensusProbes))
		writeHeader(w, "lfrc_watchdog_firings_total", "counter", "Rule firings, including ones coalesced into open incidents.")
		writeScalar(w, "lfrc_watchdog_firings_total", int64(st.Watchdog.Firings))
		writeHeader(w, "lfrc_watchdog_incidents_total", "counter", "Incident records minted (rate-limited by the per-rule cooldown).")
		writeScalar(w, "lfrc_watchdog_incidents_total", int64(st.Watchdog.Incidents))
		writeHeader(w, "lfrc_watchdog_coalesced_total", "counter", "Rule firings absorbed into an open incident by the cooldown.")
		writeScalar(w, "lfrc_watchdog_coalesced_total", int64(st.Watchdog.Coalesced))
		writeHeader(w, "lfrc_watchdog_dropped_total", "counter", "Incident records evicted by the retention bound.")
		writeScalar(w, "lfrc_watchdog_dropped_total", int64(st.Watchdog.Dropped))
		writeHeader(w, "lfrc_watchdog_retained_incidents", "gauge", "Incident records currently retained, by severity.")
		var bySev [4]int64
		for _, inc := range s.Incidents() {
			if int(inc.Level) < len(bySev) {
				bySev[inc.Level]++
			}
		}
		writeLabeled(w, "lfrc_watchdog_retained_incidents", "severity", "info", bySev[1])
		writeLabeled(w, "lfrc_watchdog_retained_incidents", "severity", "warn", bySev[2])
		writeLabeled(w, "lfrc_watchdog_retained_incidents", "severity", "critical", bySev[3])
		writeHeader(w, "lfrc_watchdog_last_incident_ts", "gauge", "Sample timestamp of the most recent rule firing (0 = never).")
		writeScalar(w, "lfrc_watchdog_last_incident_ts", st.Watchdog.LastIncidentTS)
	}

	if st.Fault.Enabled {
		writeHeader(w, "lfrc_fault_attempts_total", "counter", "Attempts seen at armed fault-injection points.")
		for _, p := range st.Fault.Points {
			writeLabeled(w, "lfrc_fault_attempts_total", "point", p.Name, int64(p.Attempts))
		}
		writeHeader(w, "lfrc_fault_injected_total", "counter", "Faults injected, by point.")
		for _, p := range st.Fault.Points {
			writeLabeled(w, "lfrc_fault_injected_total", "point", p.Name, int64(p.Fires))
		}
	}

	// Graph-census series: a fresh snapshot per scrape when the diagnosis
	// layer is on (the population census below already pays a heap walk
	// there), else the most recent explicit System.Census, so a census once
	// taken keeps reporting. No census yet means no series.
	var cs *CensusSnapshot
	if st.Lifecycle.Enabled {
		cs = s.Census()
	} else {
		cs = s.lastCensus.Load()
	}
	if cs != nil {
		writeHeader(w, "lfrc_census_live_objects", "gauge", "Live objects seen by the last object-graph census.")
		writeScalar(w, "lfrc_census_live_objects", cs.LiveObjects)
		writeHeader(w, "lfrc_census_objects", "gauge", "Census objects by reachability class.")
		writeLabeled(w, "lfrc_census_objects", "class", "reachable", cs.Reachable.Objects)
		writeLabeled(w, "lfrc_census_objects", "class", "unreachable", cs.Unreachable.Objects)
		writeLabeled(w, "lfrc_census_objects", "class", "limbo", cs.Limbo.Objects)
		writeHeader(w, "lfrc_census_bytes", "gauge", "Census bytes by reachability class.")
		writeLabeled(w, "lfrc_census_bytes", "class", "reachable", cs.Reachable.Bytes)
		writeLabeled(w, "lfrc_census_bytes", "class", "unreachable", cs.Unreachable.Bytes)
		writeLabeled(w, "lfrc_census_bytes", "class", "limbo", cs.Limbo.Bytes)
		writeHeader(w, "lfrc_census_edges", "gauge", "Pointer edges between live objects in the last census.")
		writeScalar(w, "lfrc_census_edges", cs.Edges)
		writeHeader(w, "lfrc_census_dangling_edges", "gauge", "Pointer fields naming a non-live target (expected 0 at quiescence).")
		writeScalar(w, "lfrc_census_dangling_edges", cs.DanglingEdges)
		writeHeader(w, "lfrc_census_cycles", "gauge", "Unreachable-but-counted cycles (garbage LFRC can never free).")
		writeScalar(w, "lfrc_census_cycles", cs.CycleCount)
		writeHeader(w, "lfrc_census_cycle_objects", "gauge", "Objects that are members of census-detected cycles.")
		writeScalar(w, "lfrc_census_cycle_objects", cs.CycleObjects)
		writeHeader(w, "lfrc_census_cycle_bytes", "gauge", "Bytes held by census-detected cycle members.")
		writeScalar(w, "lfrc_census_cycle_bytes", cs.CycleBytes)
		writeHeader(w, "lfrc_census_rc_mismatches", "gauge", "Objects whose stored count disagrees with actual in-edges plus roots.")
		writeScalar(w, "lfrc_census_rc_mismatches", cs.RCMismatchCount)
		writeHeader(w, "lfrc_census_wall_ns", "gauge", "Wall time the last census took, in nanoseconds.")
		writeScalar(w, "lfrc_census_wall_ns", cs.WallNS)
	}

	if s.obs == nil {
		return
	}
	writeHeader(w, "lfrc_trace_sample_every", "gauge", "Flight recorder sampling interval (0 = disabled).")
	writeScalar(w, "lfrc_trace_sample_every", int64(s.obs.SampleEvery()))
	writeHeader(w, "lfrc_trace_recorded_total", "counter", "Events recorded by the flight recorder.")
	writeScalar(w, "lfrc_trace_recorded_total", int64(s.obs.Recorded()))
	writeHeader(w, "lfrc_postmortems_total", "counter", "Violation postmortems captured (including ones retention has dropped).")
	writeScalar(w, "lfrc_postmortems_total", int64(s.obs.PostmortemCount()))

	writeHeader(w, "lfrc_op_retries", "histogram", "Retries per sampled operation.")
	writeHist(w, "lfrc_op_retries", "", s.obs.RetrySnapshot())

	lat := s.obs.LatencySnapshots()
	kinds := make([]obs.Kind, 0, len(lat))
	for k := range lat {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	writeHeader(w, "lfrc_op_latency_ns", "histogram", "Sampled operation latency in nanoseconds, by kind.")
	for _, k := range kinds {
		writeHist(w, "lfrc_op_latency_ns", fmt.Sprintf("op=%q", k), lat[k])
	}

	if s.ct != nil {
		writeContentionMetrics(w, s.ct.Snapshot())
	}

	if !st.Lifecycle.Enabled {
		return
	}
	writeHeader(w, "lfrc_lifecycle_sample_every", "gauge", "Lifecycle ledger object sampling interval (0 = installed but off).")
	writeScalar(w, "lfrc_lifecycle_sample_every", int64(st.Lifecycle.SampleEvery))
	writeHeader(w, "lfrc_lifecycle_tracked", "gauge", "Objects currently tracked by the lifecycle ledger.")
	writeScalar(w, "lfrc_lifecycle_tracked", st.Lifecycle.Tracked)
	writeHeader(w, "lfrc_lifecycle_sampled_total", "counter", "Objects ever selected for lifecycle tracking.")
	writeScalar(w, "lfrc_lifecycle_sampled_total", int64(st.Lifecycle.SampledObjects))
	writeHeader(w, "lfrc_audit_passes_total", "counter", "Lifecycle invariant-auditor passes.")
	writeScalar(w, "lfrc_audit_passes_total", int64(st.Lifecycle.AuditPasses))
	writeHeader(w, "lfrc_audit_violations_total", "counter", "Lifecycle invariant violations flagged.")
	writeScalar(w, "lfrc_audit_violations_total", int64(st.Lifecycle.Violations))

	// The population census walks the heap; at metrics-scrape cadence that
	// is cheap relative to a scrape, and it is the leak-triage signal: live
	// objects bucketed by rc, tracked objects by age.
	c := s.Population()
	writeHeader(w, "lfrc_population_live_objects", "gauge", "Live objects by reference-count bucket (online population census).")
	for _, b := range sortedBuckets(c.ByRC) {
		writeLabeled(w, "lfrc_population_live_objects", "rc", b, c.ByRC[b])
	}
	writeHeader(w, "lfrc_population_tracked_objects", "gauge", "Ledger-tracked live objects by age bucket (online population census).")
	for _, b := range sortedBuckets(c.ByAge) {
		writeLabeled(w, "lfrc_population_tracked_objects", "age", b, c.ByAge[b])
	}
	writeHeader(w, "lfrc_population_oldest_tracked_ns", "gauge", "Age of the oldest ledger-tracked live object in nanoseconds.")
	writeScalar(w, "lfrc_population_oldest_tracked_ns", c.OldestNS)
}

// writeContentionMetrics renders the contention observatory: totals
// aggregated by (op, role) — cells come and go, op/role series are stable —
// plus the decaying top-K heatmap as per-cell gauges for dashboards that want
// "what is hot right now".
func writeContentionMetrics(w io.Writer, rep ContentionReport) {
	type orKey struct{ op, role string }
	type orAgg struct{ attempts, failures, ops, retries, wasted int64 }
	agg := map[orKey]*orAgg{}
	keys := []orKey{}
	for _, c := range rep.Cells {
		k := orKey{c.Op, c.Role}
		a := agg[k]
		if a == nil {
			a = &orAgg{}
			agg[k] = a
			keys = append(keys, k)
		}
		a.attempts += c.Attempts
		a.failures += c.Failures
		a.ops += c.Ops
		a.retries += c.RetrySum
		a.wasted += c.WastedNS
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].op != keys[j].op {
			return keys[i].op < keys[j].op
		}
		return keys[i].role < keys[j].role
	})

	emit := func(name, typ, help string, get func(*orAgg) int64) {
		writeHeader(w, name, typ, help)
		for _, k := range keys {
			writeLabels(w, name, fmt.Sprintf("op=%q,role=%q", k.op, k.role), get(agg[k]))
		}
	}
	emit("lfrc_contention_attempts_total", "counter",
		"Contended DCAS/CAS attempts by operation and cell role (uncontended traffic is not recorded).",
		func(a *orAgg) int64 { return a.attempts })
	emit("lfrc_contention_failures_total", "counter",
		"Failed DCAS/CAS attempts attributed to the cell that moved, by operation and cell role.",
		func(a *orAgg) int64 { return a.failures })
	emit("lfrc_contention_ops_total", "counter",
		"Completed contended operations (retries > 0) by operation and resolving cell role.",
		func(a *orAgg) int64 { return a.ops })
	emit("lfrc_contention_retries_total", "counter",
		"Retry-chain length summed over completed contended operations.",
		func(a *orAgg) int64 { return a.retries })
	emit("lfrc_contention_wasted_ns_total", "counter",
		"Estimated nanoseconds burned in failed attempts (sampled, scaled by lfrc_contention_op_scale).",
		func(a *orAgg) int64 { return a.wasted })

	writeHeader(w, "lfrc_contention_hot_cell", "gauge",
		"Decaying activity score of the hottest cells (top-K heatmap).")
	for _, h := range rep.Heatmap {
		writeLabels(w, "lfrc_contention_hot_cell",
			fmt.Sprintf("cell=\"%#x\",role=%q", h.Addr, h.Role), h.Hot)
	}
	writeHeader(w, "lfrc_contention_dropped_total", "counter",
		"Contention records lost because a stripe's hot-cell table was full.")
	writeScalar(w, "lfrc_contention_dropped_total", rep.Dropped)
	writeHeader(w, "lfrc_contention_op_scale", "gauge",
		"Scaling factor applied to sampled wasted-ns estimates (the recorder's op-sampling interval).")
	writeScalar(w, "lfrc_contention_op_scale", int64(rep.OpScale))
}

// sortedBuckets returns a census bucket map's keys in stable order.
func sortedBuckets(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MetricsHandler serves WriteMetrics over HTTP — the system's /metrics
// endpoint, scrapeable by Prometheus.
func (s *System) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
}

func writeHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func writeScalar(w io.Writer, name string, v int64) {
	fmt.Fprintf(w, "%s %d\n", name, v)
}

func writeLabeled(w io.Writer, name, label, value string, v int64) {
	fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, value, v)
}

// writeLabels writes one sample with a preformatted label list (no braces).
func writeLabels(w io.Writer, name, labels string, v int64) {
	fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
}

// writeHist writes one Prometheus histogram series (cumulative le buckets,
// +Inf, _sum, _count). labels is a preformatted label list without braces
// (may be empty).
func writeHist(w io.Writer, name, labels string, h hist.Histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", name, labels, sep, b.UpperBound, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count())
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %d\n%s_count{%s} %d\n", name, labels, h.Sum(), name, labels, h.Count())
	}
}

// debugSystem is the system the expvar "lfrc" variable reports on; it is set
// by NewDebugMux (last mux wins). expvar allows publishing a name only once
// per process, so the variable indirects through this pointer.
var (
	debugSystem    atomic.Pointer[System]
	publishExpvars sync.Once
)

// NewDebugMux builds the debug/ops HTTP mux for a System. /debug/lfrc/ is an
// index page listing every endpoint; the roster:
//
//	/metrics               Prometheus text exposition (MetricsHandler)
//	/debug/vars            expvar JSON, including an "lfrc" variable with Stats
//	/debug/lfrc/stats      Stats() as one JSON object
//	/debug/lfrc/trace      Trace() as one JSON object (flight recorder dump)
//	/debug/lfrc/trace.json Chrome trace_event export (open in Perfetto)
//	/debug/lfrc/timeline.json
//	                       schema-versioned telemetry timeline (WithTimeline)
//	/debug/lfrc/timeline.csv
//	                       the same series as CSV for spreadsheets/gnuplot
//	/debug/lfrc/contention human-readable contention report (WithContention)
//	/debug/lfrc/contention.pb.gz
//	                       pprof-compatible contention profile; feed it to
//	                       `go tool pprof` to rank cells by wasted-ns
//	/debug/lfrc/census.json
//	                       whole-heap object-graph census: reachability,
//	                       cycle leaks, rc mismatches, per-type attribution
//	/debug/lfrc/census.pb.gz
//	                       the census in pprof heap-profile shape; feed it
//	                       to `go tool pprof` to rank leak sources
//	/debug/lfrc/census.dot Graphviz DOT render of the object graph (small
//	                       heaps; ?max=N raises the node cap)
//	/debug/lfrc/incidents.json
//	                       health-watchdog incidents with evidence windows
//	/debug/lfrc/bundle.tar.gz
//	                       on-demand diagnostic bundle (see WriteBundle);
//	                       feed it to cmd/lfrcdoctor
//	/debug/pprof/...       the standard Go profiler endpoints
//
// Every lfrc endpoint is read-only: non-GET/HEAD methods answer 405 (the
// pprof subtree keeps its own method handling).
//
// get is called per request so callers can swap the live system (benchmark
// harnesses rebuild systems per phase); use func() *System { return s } for a
// fixed one. A nil current system answers 503.
func NewDebugMux(get func() *System) *http.ServeMux {
	publishExpvars.Do(func() {
		expvar.Publish("lfrc", expvar.Func(func() any {
			s := debugSystem.Load()
			if s == nil {
				return nil
			}
			return s.Stats()
		}))
	})
	if s := get(); s != nil {
		debugSystem.Store(s)
	}

	// Every published endpoint is a read: anything but GET/HEAD answers 405
	// with an Allow header. (The pprof subtree is exempt — pprof's symbol
	// endpoint legitimately accepts POST.)
	readOnly := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", "GET, HEAD")
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			h.ServeHTTP(w, r)
		})
	}

	withSys := func(fn func(s *System, w http.ResponseWriter, r *http.Request)) http.Handler {
		return readOnly(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s := get()
			if s == nil {
				http.Error(w, "no live lfrc system", http.StatusServiceUnavailable)
				return
			}
			debugSystem.Store(s)
			fn(s, w, r)
		}))
	}

	// endpoints is the single source of truth: every entry is registered on
	// the mux and listed, with its description, by the index page at
	// /debug/lfrc/.
	type endpoint struct {
		path    string
		desc    string
		handler http.Handler
	}
	endpoints := []endpoint{
		{"/metrics", "Prometheus text exposition of every lfrc_* series",
			withSys(func(s *System, w http.ResponseWriter, r *http.Request) {
				s.MetricsHandler().ServeHTTP(w, r)
			})},
		{"/debug/lfrc/stats", "unified Stats() snapshot as one JSON object",
			withSys(func(s *System, w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				enc.Encode(s.Stats())
			})},
		{"/debug/lfrc/trace", "flight recorder dump (events, latency digests, postmortems) as JSON",
			withSys(func(s *System, w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				enc.Encode(s.Trace())
			})},
		{"/debug/lfrc/trace.json", "Chrome trace_event export; open in Perfetto or chrome://tracing",
			withSys(func(s *System, w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("Content-Disposition", `attachment; filename="lfrc-trace.json"`)
				if err := s.WriteChromeTrace(w); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			})},
		{"/debug/lfrc/timeline.json", "schema-versioned telemetry timeline (WithTimeline)",
			withSys(func(s *System, w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				if err := s.WriteTimelineJSON(w); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			})},
		{"/debug/lfrc/timeline.csv", "the telemetry timeline as CSV for spreadsheets/gnuplot",
			withSys(func(s *System, w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/csv; charset=utf-8")
				if err := s.WriteTimelineCSV(w); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			})},
		{"/debug/lfrc/contention", "human-readable contention report (WithContention)",
			withSys(func(s *System, w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				s.WriteContentionReport(w)
			})},
		{"/debug/lfrc/contention.pb.gz", "pprof-compatible contention profile; `go tool pprof -top` ranks cells by wasted-ns",
			withSys(func(s *System, w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set("Content-Disposition", `attachment; filename="lfrc-contention.pb.gz"`)
				if err := s.WriteContentionProfile(w); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			})},
		{"/debug/lfrc/census.json", "whole-heap object-graph census: reachability, cycle leaks, rc mismatches, per-type retained sizes",
			withSys(func(s *System, w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				if err := s.WriteCensusJSON(w); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			})},
		{"/debug/lfrc/census.pb.gz", "the census in pprof heap-profile shape; `go tool pprof -top` ranks leak sources",
			withSys(func(s *System, w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set("Content-Disposition", `attachment; filename="lfrc-census.pb.gz"`)
				if err := s.WriteCensusProfile(w); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			})},
		{"/debug/lfrc/census.dot", "Graphviz DOT render of the object graph (small heaps; ?max=N raises the node cap)",
			withSys(func(s *System, w http.ResponseWriter, r *http.Request) {
				maxNodes := 0
				if q := r.URL.Query().Get("max"); q != "" {
					fmt.Sscanf(q, "%d", &maxNodes)
				}
				w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
				if err := s.WriteCensusDOT(w, maxNodes); err != nil {
					http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				}
			})},
		{"/debug/lfrc/incidents.json", "health-watchdog incidents: rules, firing counters, evidence windows (WithWatchdog)",
			withSys(func(s *System, w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				if err := s.WriteIncidentsJSON(w); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			})},
		{"/debug/lfrc/bundle.tar.gz", "diagnostic bundle: the whole observability stack as one black-box tar.gz for cmd/lfrcdoctor",
			withSys(func(s *System, w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/gzip")
				w.Header().Set("Content-Disposition", `attachment; filename="lfrc-bundle.tar.gz"`)
				if err := s.WriteBundle(w); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
			})},
		{"/debug/vars", "expvar JSON, including an \"lfrc\" variable carrying Stats", readOnly(expvar.Handler())},
		{"/debug/pprof/", "standard Go profiler endpoints (cmdline, profile, symbol, trace, ...)", http.HandlerFunc(pprof.Index)},
	}

	mux := http.NewServeMux()
	for _, ep := range endpoints {
		if ep.path == "/debug/pprof/" {
			continue // registered below with its sub-handlers
		}
		mux.Handle(ep.path, ep.handler)
	}
	// Index page. The "/debug/lfrc/" pattern is a subtree match, so answer
	// the directory itself and 404 anything unregistered beneath it.
	mux.HandleFunc("/debug/lfrc/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/lfrc/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<html><head><title>lfrc debug</title></head><body>\n<h1>lfrc debug endpoints</h1>\n<table>\n")
		for _, ep := range endpoints {
			fmt.Fprintf(w, "<tr><td><a href=%q>%s</a></td><td>%s</td></tr>\n",
				ep.path, ep.path, ep.desc)
		}
		fmt.Fprintf(w, "</table></body></html>\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
