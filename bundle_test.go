package lfrc_test

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"reflect"
	"sync"
	"testing"
	"time"

	"lfrc"
)

// readBundle unpacks a bundle into name → bytes.
func readBundle(t *testing.T, data []byte) map[string][]byte {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	out := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle tar: %v", err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("bundle entry %s: %v", hdr.Name, err)
		}
		out[hdr.Name] = b
	}
	return out
}

// bundleSystem builds a fully instrumented quiesced system with some real
// traffic behind it.
func bundleSystem(t *testing.T) *lfrc.System {
	t.Helper()
	sys, err := lfrc.New(
		lfrc.WithContention(true),
		lfrc.WithTraceSampling(4),
		lfrc.WithLifecycleLedger(1),
		lfrc.WithFaultPlan("core.load:nth=1000000000"),
		lfrc.WithTimeline(lfrc.TimelineOptions{Manual: true}),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(sys.Close)
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := lfrc.Value(1); i <= 32; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, ok := d.PopLeft(); !ok {
			t.Fatal("PopLeft on a non-empty deque reported empty")
		}
	}
	sys.CaptureTimelineSample()
	sys.CaptureTimelineSample()
	return sys
}

// TestBundleRoundTrip: the bundle's manifest names exactly the artifacts the
// archive carries, and every artifact parses as what it claims to be.
func TestBundleRoundTrip(t *testing.T) {
	sys := bundleSystem(t)
	var buf bytes.Buffer
	if err := sys.WriteBundle(&buf); err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	arts := readBundle(t, buf.Bytes())

	var m lfrc.BundleManifest
	if err := json.Unmarshal(arts["manifest.json"], &m); err != nil {
		t.Fatalf("manifest.json: %v", err)
	}
	if m.SchemaVersion != lfrc.BundleSchemaVersion || m.Engine == "" || m.Reclaimer == "" {
		t.Errorf("manifest = %+v", m)
	}
	if m.FaultPlan != "core.load:nth=1000000000" || m.FaultSeed == 0 {
		t.Errorf("manifest fault context = plan %q seed %d", m.FaultPlan, m.FaultSeed)
	}
	if len(m.Artifacts) != len(arts) {
		t.Errorf("manifest lists %d artifacts, archive holds %d", len(m.Artifacts), len(arts))
	}
	for _, name := range m.Artifacts {
		if _, ok := arts[name]; !ok {
			t.Errorf("manifest names %s but the archive lacks it", name)
		}
	}

	for _, name := range []string{"stats.json", "timeline.json", "incidents.json", "census.json", "postmortems.json"} {
		var v map[string]any
		if err := json.Unmarshal(arts[name], &v); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
	var tl struct {
		Enabled bool             `json:"enabled"`
		Samples []map[string]any `json:"samples"`
	}
	if err := json.Unmarshal(arts["timeline.json"], &tl); err != nil || !tl.Enabled || len(tl.Samples) != 2 {
		t.Errorf("timeline.json = enabled %v, %d samples (err %v)", tl.Enabled, len(tl.Samples), err)
	}
	for _, name := range []string{"census.pb.gz", "contention.pb.gz"} {
		b := arts[name]
		if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
			t.Errorf("%s is not gzip", name)
		}
	}
	if !bytes.Contains(arts["metrics.txt"], []byte("lfrc_ops_total")) ||
		!bytes.Contains(arts["metrics.txt"], []byte("lfrc_watchdog_evals_total")) {
		t.Error("metrics.txt missing expected series")
	}
}

// stripVolatile removes the capture-instant fields from a decoded artifact.
func stripVolatile(m map[string]any) {
	delete(m, "created_ns")
	delete(m, "ts")
	delete(m, "wall_ns")
}

// TestBundleDeterminism: two bundles from the same quiesced system must agree
// on manifest, stats, census, and incidents modulo capture timestamps — the
// bundle is a pure function of system state, not of when it was taken.
func TestBundleDeterminism(t *testing.T) {
	sys := bundleSystem(t)
	var b1, b2 bytes.Buffer
	if err := sys.WriteBundle(&b1); err != nil {
		t.Fatalf("WriteBundle #1: %v", err)
	}
	if err := sys.WriteBundle(&b2); err != nil {
		t.Fatalf("WriteBundle #2: %v", err)
	}
	a1, a2 := readBundle(t, b1.Bytes()), readBundle(t, b2.Bytes())

	for _, name := range []string{"manifest.json", "stats.json", "census.json", "incidents.json", "postmortems.json"} {
		var v1, v2 map[string]any
		if err := json.Unmarshal(a1[name], &v1); err != nil {
			t.Fatalf("%s #1: %v", name, err)
		}
		if err := json.Unmarshal(a2[name], &v2); err != nil {
			t.Fatalf("%s #2: %v", name, err)
		}
		stripVolatile(v1)
		stripVolatile(v2)
		if !reflect.DeepEqual(v1, v2) {
			t.Errorf("%s differs between two quiesced captures:\n#1: %v\n#2: %v", name, v1, v2)
		}
	}
}

// TestBundleWhileMutating: capturing a bundle while workers hammer the heap
// must be race-clean and structurally sound (run under -race by make check).
func TestBundleWhileMutating(t *testing.T) {
	sys, err := lfrc.New(
		lfrc.WithContention(true),
		lfrc.WithTraceSampling(16),
		lfrc.WithTimeline(lfrc.TimelineOptions{Interval: 2 * time.Millisecond}),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	q, err := sys.NewQueue()
	if err != nil {
		t.Fatalf("NewQueue: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed lfrc.Value) {
			defer wg.Done()
			for i := lfrc.Value(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := q.Enqueue(seed*1000 + i%97); err != nil {
					t.Error(err)
					return
				}
				q.Dequeue()
			}
		}(lfrc.Value(w + 1))
	}
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if err := sys.WriteBundle(&buf); err != nil {
			t.Fatalf("WriteBundle under load: %v", err)
		}
		arts := readBundle(t, buf.Bytes())
		var m lfrc.BundleManifest
		if err := json.Unmarshal(arts["manifest.json"], &m); err != nil {
			t.Fatalf("manifest under load: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
