package lfrc_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lfrc"
)

// TestMetricNamesGolden locks the Prometheus metric-name surface: the full
// set of "# TYPE name kind" declarations emitted by a system with every
// telemetry layer enabled must match testdata/metric_names.golden. Dashboards
// and alert rules key on these names, so renaming or dropping one is a
// breaking change that must show up in review as a golden-file diff — the
// same contract testdata/stats_keys.golden enforces for the Stats JSON.
//
// Regenerate with: UPDATE_GOLDEN=1 go test -run TestMetricNamesGolden .
func TestMetricNamesGolden(t *testing.T) {
	sys, err := lfrc.New(
		lfrc.WithTraceSampling(1),
		lfrc.WithLifecycleLedger(1),
		lfrc.WithContention(true),
		// Arm the fault injector with a rule that can never fire so the
		// lfrc_fault_* names are part of the locked surface without
		// perturbing the run, and enable the pressure policy.
		lfrc.WithFaultPlan("core.load:nth=1000000000"),
		lfrc.WithHeapPressurePolicy(lfrc.DefaultHeapPressurePolicy()),
		// Manual timeline: the lfrc_timeline_* names are locked without a
		// background goroutine racing the scrape.
		lfrc.WithTimeline(lfrc.TimelineOptions{Manual: true}),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := lfrc.Value(1); i <= 8; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
	}
	d.Close()

	var sb strings.Builder
	sys.WriteMetrics(&sb)

	seen := map[string]bool{}
	var names []string
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		decl := strings.TrimPrefix(line, "# TYPE ")
		if fields := strings.Fields(decl); len(fields) != 2 {
			t.Errorf("malformed TYPE line: %q", line)
			continue
		}
		if !seen[decl] {
			seen[decl] = true
			names = append(names, decl)
		}
	}
	sort.Strings(names)
	got := strings.Join(names, "\n") + "\n"

	golden := filepath.Join("testdata", "metric_names.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("Prometheus metric-name set changed.\n--- got ---\n%s--- want (%s) ---\n%s"+
			"If the change is intentional, regenerate with UPDATE_GOLDEN=1 and call it out in review.",
			got, golden, want)
	}
}
