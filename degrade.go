package lfrc

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"lfrc/internal/fault"
)

// WithFaultPlan arms the deterministic fault injector with a plan spec:
// semicolon-separated point rules of the form point:directive[,directive...],
// e.g.
//
//	core.load:p=0.01;snark.popright:nth=3+7;mem.alloc:every=1000
//
// Injection points cover the LFRC operations' CAS/DCAS attempts (core.load,
// core.store, core.storealloc, core.cas, core.dcas, core.addtorc), the
// reclamation backends (reclaim.push, reclaim.drain, reclaim.epoch — or
// reclaim.* to arm all three), the four Snark hat loops
// (snark.pushleft/pushright/popleft/popright), the queue, stack, and set
// retry loops (queue.enqueue/dequeue, stack.push/pop,
// set.insert/delete/popmin), and the allocator (mem.alloc forces an injected
// ErrOutOfMemory; mem.alloc.slow forces the allocator past its shard-local
// fast path). A point ending in "*" is a prefix glob. Directives: p=FLOAT
// (probabilistic), every=N, nth=A+B+..., limit=N, delay=DURATION, gosched,
// stall. An injected CAS/DCAS failure makes the operation take exactly the
// retry or compensation path a genuinely lost race takes.
//
// Whether attempt n at a point fires depends only on (seed, point, n) — see
// WithFaultSeed — so the same seed and plan reproduce the same firing
// schedule. An empty spec (the default) leaves injection disabled at zero
// hot-path cost. A malformed spec surfaces as an error from New.
//
// Beware rules that fire on every attempt (p=1, every=1) at retry-loop
// points: the loop can never succeed and the operation livelocks, by design.
func WithFaultPlan(spec string) Option {
	return optionFunc(func(c *config) { c.faultPlan = spec })
}

// WithFaultSeed sets the fault injector's seed (default 1). Same seed, same
// plan → same injection schedule at every point, independent of goroutine
// interleaving.
func WithFaultSeed(seed uint64) Option {
	return optionFunc(func(c *config) { c.faultSeed = seed })
}

// HeapPressurePolicy is the graceful-degradation contract for heap
// exhaustion: instead of failing an operation on the first ErrOutOfMemory,
// the system retries it up to MaxRetries times, kicking the deferred-
// reclamation backlog (DrainZombies) and backing off before each retry.
// Only after the policy is exhausted does the caller see the error.
type HeapPressurePolicy struct {
	// MaxRetries bounds the retry attempts after the initial failure.
	// 0 disables degradation (fail fast, the default).
	MaxRetries int

	// Backoff is the sleep before the first retry; it doubles per retry up
	// to MaxBackoff. A zero Backoff yields the processor instead of
	// sleeping.
	Backoff    time.Duration
	MaxBackoff time.Duration

	// DrainPerRetry caps the zombie objects reclaimed before each retry
	// (0 = drain everything parked).
	DrainPerRetry int
}

// DefaultHeapPressurePolicy is a sane degraded-mode policy: 8 retries,
// 50µs initial backoff doubling to at most 5ms, full zombie drain per retry.
func DefaultHeapPressurePolicy() HeapPressurePolicy {
	return HeapPressurePolicy{
		MaxRetries: 8,
		Backoff:    50 * time.Microsecond,
		MaxBackoff: 5 * time.Millisecond,
	}
}

// WithHeapPressurePolicy installs a graceful-degradation policy for heap
// exhaustion. The default policy is disabled (MaxRetries 0): allocation
// failures surface immediately. Degraded-mode activity is counted in
// Stats().Degraded and exported as lfrc_degraded_* metrics; when the policy
// finally gives up, the operation fails with an error matching
// errors.Is(err, ErrOutOfMemory) and — when the flight recorder is enabled —
// a postmortem carrying the injected fault schedule is captured for replay.
func WithHeapPressurePolicy(p HeapPressurePolicy) Option {
	return optionFunc(func(c *config) { c.pressure = p })
}

// degradedCounters is the System's degraded-mode accounting.
type degradedCounters struct {
	retries        atomic.Int64
	recoveries     atomic.Int64
	exhaustions    atomic.Int64
	zombiesDrained atomic.Int64
}

// retryPressure applies the heap-pressure policy to a failed operation: if
// err is heap exhaustion and a policy is installed, it drains zombies, backs
// off, and retries op until it succeeds or the policy is spent. It returns
// op's final error (nil on recovery); non-exhaustion errors pass through
// untouched. Callers keep their fast path closure-free by only calling this
// once an error is already in hand.
func (s *System) retryPressure(err error, op func() error) error {
	if err == nil || s.pressure.MaxRetries <= 0 || !errors.Is(err, ErrOutOfMemory) {
		return err
	}
	backoff := s.pressure.Backoff
	for i := 0; i < s.pressure.MaxRetries; i++ {
		s.deg.retries.Add(1)
		if n := s.rc.DrainZombies(s.pressure.DrainPerRetry); n > 0 {
			s.deg.zombiesDrained.Add(int64(n))
		}
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if s.pressure.MaxBackoff > 0 && backoff > s.pressure.MaxBackoff {
				backoff = s.pressure.MaxBackoff
			}
		} else {
			runtime.Gosched()
		}
		if err = op(); err == nil {
			s.deg.recoveries.Add(1)
			return nil
		}
		if !errors.Is(err, ErrOutOfMemory) {
			return err
		}
	}
	s.deg.exhaustions.Add(1)
	// The postmortem carries the injected schedule: together with the seed
	// and plan (Stats().Fault) the exhaustion is replayable.
	reason := fmt.Sprintf("heap exhaustion survived %d degraded retries", s.pressure.MaxRetries)
	if sched := s.fj.ScheduleString(64); sched != "" {
		reason += "; injected schedule tail: " + sched
	}
	s.obs.CapturePostmortem(reason, 0)
	return err
}

// withPressure runs op under the heap-pressure policy. Cold-path helper for
// constructors; hot paths use retryPressure directly.
func (s *System) withPressure(op func() error) error {
	return s.retryPressure(op(), op)
}

// FaultStats is the fault injector's accounting: the seed, total injections,
// and per-point attempt/fire counts for every armed injection point.
type FaultStats struct {
	// Enabled reports whether a fault plan armed at least one point.
	Enabled bool `json:"enabled"`

	// Seed is the injector's seed; with the plan it reproduces the
	// schedule.
	Seed uint64 `json:"seed"`

	// Injected is the total number of firings across all points.
	Injected uint64 `json:"injected_total"`

	// Points is the per-point accounting, in declaration order.
	Points []FaultPointStats `json:"points,omitempty"`
}

// FaultPointStats is one injection point's accounting.
type FaultPointStats = fault.PointStat

// DegradedStats counts heap-pressure degraded-mode activity.
type DegradedStats struct {
	// PolicyEnabled reports whether a heap-pressure policy is installed.
	PolicyEnabled bool `json:"policy_enabled"`

	// Retries counts degraded-mode retry attempts; Recoveries counts
	// operations that succeeded on a retry; Exhaustions counts operations
	// that failed even after the full policy ran.
	Retries     int64 `json:"retries"`
	Recoveries  int64 `json:"recoveries"`
	Exhaustions int64 `json:"exhaustions"`

	// ZombiesDrained counts deferred-reclamation objects freed by
	// degraded-mode drains.
	ZombiesDrained int64 `json:"zombies_drained"`
}

// FaultFiring is one recorded injection: attempt ordinal Attempt at the named
// point fired.
type FaultFiring = fault.Firing

// FaultSchedule returns the retained log of injected firings, oldest first
// (bounded retention). With the seed and plan it makes a chaos run
// replayable: the same seed re-fires the same attempt ordinals. Without
// WithFaultPlan it returns nil.
func (s *System) FaultSchedule() []FaultFiring { return s.fj.Schedule() }
