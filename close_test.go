package lfrc_test

import (
	"encoding/json"
	"testing"

	"lfrc"
)

// closer is any structure handle; every wrapper shares the embedded handle's
// idempotent Close.
type closer interface{ Close() }

func TestCloseIsIdempotent(t *testing.T) {
	sys, err := lfrc.New()
	if err != nil {
		t.Fatal(err)
	}

	d, err := sys.NewDeque()
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.NewQueue()
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.NewStack()
	if err != nil {
		t.Fatal(err)
	}
	set, err := sys.NewSet()
	if err != nil {
		t.Fatal(err)
	}

	if err := d.PushLeft(1); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(2); err != nil {
		t.Fatal(err)
	}
	if err := st.Push(3); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Insert(4); err != nil {
		t.Fatal(err)
	}

	for _, c := range []closer{d, q, st, set} {
		c.Close()
		c.Close() // second Close must be a no-op, not a double free
		c.Close()
	}

	s := sys.Stats()
	if s.Heap.LiveObjects != 0 {
		t.Errorf("LiveObjects = %d after closing every structure, want 0", s.Heap.LiveObjects)
	}
	if s.Heap.DoubleFrees != 0 {
		t.Errorf("DoubleFrees = %d, want 0: repeated Close re-ran teardown", s.Heap.DoubleFrees)
	}
	if s.RC.FreeErrors != 0 {
		t.Errorf("FreeErrors = %d, want 0", s.RC.FreeErrors)
	}
	if audit := sys.Audit(); len(audit) != 0 {
		t.Errorf("Audit after close: %v", audit)
	}
}

func TestUnifiedStats(t *testing.T) {
	sys, err := lfrc.New(lfrc.WithAllocShards(2))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.NewStack()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := st.Push(lfrc.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for {
		if _, ok := st.Pop(); !ok {
			break
		}
	}

	s := sys.Stats()
	if s.Engine != sys.EngineName() {
		t.Errorf("Stats.Engine = %q, want %q", s.Engine, sys.EngineName())
	}
	if s.Alloc.Shards != 2 || len(s.Alloc.PerShard) != 2 {
		t.Errorf("Alloc.Shards = %d with %d per-shard entries, want 2", s.Alloc.Shards, len(s.Alloc.PerShard))
	}
	if s.Heap.Allocs == 0 || s.Heap.Frees == 0 {
		t.Errorf("Stats.Heap not populated: %+v", s.Heap)
	}
	if s.RC.Loads == 0 || s.RC.CASOps == 0 {
		t.Errorf("Stats.RC not populated: %+v", s.RC)
	}
	var perShardAllocs int64
	for _, sh := range s.Alloc.PerShard {
		perShardAllocs += sh.Allocs
	}
	if perShardAllocs != s.Heap.Allocs {
		t.Errorf("per-shard allocs sum to %d, Heap.Allocs = %d", perShardAllocs, s.Heap.Allocs)
	}

	// The JSON encoding is a stable external surface (cmd/lfrcbench embeds
	// it in experiment output); the tags must not drift.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"engine", "heap", "rc", "alloc", "zombies"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("Stats JSON missing top-level key %q in %s", key, raw)
		}
	}
	heap, _ := decoded["heap"].(map[string]any)
	for _, key := range []string{"allocs", "frees", "recycles", "live_objects", "live_words", "high_water", "double_frees", "corruptions", "alloc_failures"} {
		if _, ok := heap[key]; !ok {
			t.Errorf("Stats JSON heap section missing key %q", key)
		}
	}
	alloc, _ := decoded["alloc"].(map[string]any)
	for _, key := range []string{"shards", "fill_target", "global_free_listed", "per_shard"} {
		if _, ok := alloc[key]; !ok {
			t.Errorf("Stats JSON alloc section missing key %q", key)
		}
	}
}
