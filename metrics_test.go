package lfrc_test

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"lfrc"
)

// tracedSystem builds a fully-sampled system with some deque traffic on it.
func tracedSystem(t *testing.T) *lfrc.System {
	t.Helper()
	sys, err := lfrc.New(lfrc.WithTraceSampling(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := lfrc.Value(1); i <= 32; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
	}
	for {
		if _, ok := d.PopLeft(); !ok {
			break
		}
	}
	d.Close()
	return sys
}

func TestMetricsHandlerServesPrometheusText(t *testing.T) {
	sys := tracedSystem(t)
	srv := httptest.NewServer(sys.MetricsHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE lfrc_ops_total counter",
		`lfrc_ops_total{op="load"} `,
		`lfrc_ops_total{op="dcas"} `,
		"# TYPE lfrc_load_retries_total counter",
		"# TYPE lfrc_heap_live_objects gauge",
		"# TYPE lfrc_zombie_backlog gauge",
		"# TYPE lfrc_op_retries histogram",
		`lfrc_op_retries_bucket{le="+Inf"} `,
		"lfrc_op_retries_sum ",
		"lfrc_op_retries_count ",
		"# TYPE lfrc_op_latency_ns histogram",
		`lfrc_op_latency_ns_bucket{op="load",le=`,
		`lfrc_op_latency_ns_count{op="push_right"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Exposition-format sanity: no naked braces, every non-comment line is
	// "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestMetricsWithoutObserverOmitsHistograms(t *testing.T) {
	sys, err := lfrc.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var sb strings.Builder
	sys.WriteMetrics(&sb)
	body := sb.String()
	if !strings.Contains(body, "lfrc_ops_total") {
		t.Error("counters missing without observer")
	}
	if strings.Contains(body, "lfrc_op_latency_ns") || strings.Contains(body, "lfrc_trace_recorded_total") {
		t.Error("recorder series present without observer")
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	sys := tracedSystem(t)
	srv := httptest.NewServer(lfrc.NewDebugMux(func() *lfrc.System { return sys }))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp, string(raw)
	}

	if resp, body := get("/metrics"); resp.StatusCode != 200 || !strings.Contains(body, "lfrc_ops_total") {
		t.Errorf("/metrics: status %d", resp.StatusCode)
	}

	if resp, body := get("/debug/lfrc/stats"); resp.StatusCode != 200 {
		t.Errorf("/debug/lfrc/stats: status %d", resp.StatusCode)
	} else {
		var st lfrc.Stats
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Errorf("/debug/lfrc/stats not JSON Stats: %v", err)
		} else if st.RC.Loads == 0 {
			t.Error("/debug/lfrc/stats reports zero loads after traffic")
		}
	}

	if resp, body := get("/debug/lfrc/trace"); resp.StatusCode != 200 {
		t.Errorf("/debug/lfrc/trace: status %d", resp.StatusCode)
	} else {
		var tr struct {
			Recorded uint64            `json:"recorded"`
			Latency  map[string]any    `json:"latency_ns"`
			Events   []json.RawMessage `json:"events"`
		}
		if err := json.Unmarshal([]byte(body), &tr); err != nil {
			t.Errorf("/debug/lfrc/trace not JSON: %v", err)
		} else if tr.Recorded == 0 || len(tr.Events) == 0 || len(tr.Latency) == 0 {
			t.Errorf("/debug/lfrc/trace empty: recorded=%d events=%d", tr.Recorded, len(tr.Events))
		}
	}

	if resp, body := get("/debug/vars"); resp.StatusCode != 200 {
		t.Errorf("/debug/vars: status %d", resp.StatusCode)
	} else if !strings.Contains(body, `"lfrc"`) {
		t.Error("/debug/vars does not publish the lfrc variable")
	}

	if resp, body := get("/debug/pprof/"); resp.StatusCode != 200 || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/: status %d", resp.StatusCode)
	}
}

func TestDebugMuxWithoutSystemAnswers503(t *testing.T) {
	srv := httptest.NewServer(lfrc.NewDebugMux(func() *lfrc.System { return nil }))
	defer srv.Close()
	for _, path := range []string{
		"/metrics",
		"/debug/lfrc/stats",
		"/debug/lfrc/trace",
		"/debug/lfrc/trace.json",
		"/debug/lfrc/contention",
		"/debug/lfrc/contention.pb.gz",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s without system: status %d, want 503", path, resp.StatusCode)
		}
	}
}

func TestDebugMuxContentTypesAnd404(t *testing.T) {
	sys := tracedSystem(t)
	srv := httptest.NewServer(lfrc.NewDebugMux(func() *lfrc.System { return sys }))
	defer srv.Close()

	for path, wantCT := range map[string]string{
		"/metrics":               "text/plain",
		"/debug/lfrc/stats":      "application/json",
		"/debug/lfrc/trace":      "application/json",
		"/debug/lfrc/trace.json": "application/json",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantCT) {
			t.Errorf("%s: Content-Type = %q, want prefix %q", path, ct, wantCT)
		}
	}

	for _, path := range []string{"/nope", "/debug/lfrc/unknown", "/metricsx"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// contendedSystem builds a contention-observed system and hammers one deque
// from several goroutines so the observatory has real failed attempts in it.
func contendedSystem(t *testing.T) *lfrc.System {
	t.Helper()
	sys, err := lfrc.New(lfrc.WithContention(true), lfrc.WithTraceSampling(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := d.PushRight(lfrc.Value(i + 1)); err != nil {
					t.Error(err)
					return
				}
				d.PopRight()
			}
		}()
	}
	wg.Wait()
	d.Close()
	return sys
}

func TestDebugMuxContentionEndpoints(t *testing.T) {
	sys := contendedSystem(t)
	srv := httptest.NewServer(lfrc.NewDebugMux(func() *lfrc.System { return sys }))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/lfrc/contention")
	if err != nil {
		t.Fatalf("GET contention: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/lfrc/contention: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("contention report Content-Type = %q", ct)
	}
	if !strings.Contains(string(raw), "contention observatory") {
		t.Errorf("contention report body = %q", string(raw[:min(len(raw), 120)]))
	}

	resp, err = http.Get(srv.URL + "/debug/lfrc/contention.pb.gz")
	if err != nil {
		t.Fatalf("GET contention.pb.gz: %v", err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/lfrc/contention.pb.gz: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("contention profile Content-Type = %q", ct)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("contention profile is not gzip: %v", err)
	}
	if _, err := io.ReadAll(zr); err != nil {
		t.Fatalf("contention profile gunzip: %v", err)
	}
}

func TestMetricsIncludeContentionSeries(t *testing.T) {
	sys := contendedSystem(t)
	var sb strings.Builder
	sys.WriteMetrics(&sb)
	body := sb.String()
	for _, want := range []string{
		"# TYPE lfrc_contention_attempts_total counter",
		"# TYPE lfrc_contention_failures_total counter",
		"# TYPE lfrc_contention_wasted_ns_total counter",
		"# TYPE lfrc_contention_hot_cell gauge",
		"# TYPE lfrc_contention_dropped_total counter",
		"lfrc_contention_op_scale 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Four goroutines on one deque must collide at least once; when they do
	// the hat roles surface as labels.
	rep := sys.ContentionReport()
	if len(rep.Cells) == 0 {
		t.Skip("no contention observed this run (scheduler never collided)")
	}
	if !strings.Contains(body, `role="right_hat"`) && !strings.Contains(body, `role="rc"`) &&
		!strings.Contains(body, `role="pointer"`) && !strings.Contains(body, `role="left_hat"`) {
		t.Errorf("no role-labeled contention series in:\n%s", body)
	}
	// A system without WithContention emits none of these series.
	plain, err := lfrc.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sb.Reset()
	plain.WriteMetrics(&sb)
	if strings.Contains(sb.String(), "lfrc_contention_") {
		t.Error("contention series present without WithContention")
	}
}
