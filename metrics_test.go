package lfrc_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lfrc"
)

// tracedSystem builds a fully-sampled system with some deque traffic on it.
func tracedSystem(t *testing.T) *lfrc.System {
	t.Helper()
	sys, err := lfrc.New(lfrc.WithTraceSampling(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := lfrc.Value(1); i <= 32; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
	}
	for {
		if _, ok := d.PopLeft(); !ok {
			break
		}
	}
	d.Close()
	return sys
}

func TestMetricsHandlerServesPrometheusText(t *testing.T) {
	sys := tracedSystem(t)
	srv := httptest.NewServer(sys.MetricsHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE lfrc_ops_total counter",
		`lfrc_ops_total{op="load"} `,
		`lfrc_ops_total{op="dcas"} `,
		"# TYPE lfrc_load_retries_total counter",
		"# TYPE lfrc_heap_live_objects gauge",
		"# TYPE lfrc_zombie_backlog gauge",
		"# TYPE lfrc_op_retries histogram",
		`lfrc_op_retries_bucket{le="+Inf"} `,
		"lfrc_op_retries_sum ",
		"lfrc_op_retries_count ",
		"# TYPE lfrc_op_latency_ns histogram",
		`lfrc_op_latency_ns_bucket{op="load",le=`,
		`lfrc_op_latency_ns_count{op="push_right"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Exposition-format sanity: no naked braces, every non-comment line is
	// "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestMetricsWithoutObserverOmitsHistograms(t *testing.T) {
	sys, err := lfrc.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var sb strings.Builder
	sys.WriteMetrics(&sb)
	body := sb.String()
	if !strings.Contains(body, "lfrc_ops_total") {
		t.Error("counters missing without observer")
	}
	if strings.Contains(body, "lfrc_op_latency_ns") || strings.Contains(body, "lfrc_trace_recorded_total") {
		t.Error("recorder series present without observer")
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	sys := tracedSystem(t)
	srv := httptest.NewServer(lfrc.NewDebugMux(func() *lfrc.System { return sys }))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp, string(raw)
	}

	if resp, body := get("/metrics"); resp.StatusCode != 200 || !strings.Contains(body, "lfrc_ops_total") {
		t.Errorf("/metrics: status %d", resp.StatusCode)
	}

	if resp, body := get("/debug/lfrc/stats"); resp.StatusCode != 200 {
		t.Errorf("/debug/lfrc/stats: status %d", resp.StatusCode)
	} else {
		var st lfrc.Stats
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Errorf("/debug/lfrc/stats not JSON Stats: %v", err)
		} else if st.RC.Loads == 0 {
			t.Error("/debug/lfrc/stats reports zero loads after traffic")
		}
	}

	if resp, body := get("/debug/lfrc/trace"); resp.StatusCode != 200 {
		t.Errorf("/debug/lfrc/trace: status %d", resp.StatusCode)
	} else {
		var tr struct {
			Recorded uint64            `json:"recorded"`
			Latency  map[string]any    `json:"latency_ns"`
			Events   []json.RawMessage `json:"events"`
		}
		if err := json.Unmarshal([]byte(body), &tr); err != nil {
			t.Errorf("/debug/lfrc/trace not JSON: %v", err)
		} else if tr.Recorded == 0 || len(tr.Events) == 0 || len(tr.Latency) == 0 {
			t.Errorf("/debug/lfrc/trace empty: recorded=%d events=%d", tr.Recorded, len(tr.Events))
		}
	}

	if resp, body := get("/debug/vars"); resp.StatusCode != 200 {
		t.Errorf("/debug/vars: status %d", resp.StatusCode)
	} else if !strings.Contains(body, `"lfrc"`) {
		t.Error("/debug/vars does not publish the lfrc variable")
	}

	if resp, body := get("/debug/pprof/"); resp.StatusCode != 200 || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/: status %d", resp.StatusCode)
	}
}

func TestDebugMuxWithoutSystemAnswers503(t *testing.T) {
	srv := httptest.NewServer(lfrc.NewDebugMux(func() *lfrc.System { return nil }))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/metrics without system: status %d, want 503", resp.StatusCode)
	}
}
