// Package lfrc is a Go implementation of Lock-Free Reference Counting
// (LFRC), the methodology of Detlefs, Martin, Moir & Steele (PODC 2001) for
// turning garbage-collection-dependent lock-free data structures into
// GC-independent ones.
//
// # What this package provides
//
// A System bundles a simulated manual-memory heap (freed slots are poisoned
// and recycled — Go's GC is deliberately out of the loop), a DCAS engine
// (either a locking simulation of the hardware instruction the paper
// assumes, or a lock-free software MCAS built from CAS), and the six LFRC
// pointer operations. On top of it the package offers three ready-made
// GC-independent structures:
//
//   - Deque: the Snark DCAS-based lock-free double-ended queue, the paper's
//     worked example (Figure 1, right column);
//   - Queue: a Michael–Scott FIFO queue;
//   - Stack: a Treiber stack;
//   - Set: a DCAS-based sorted set (an extension beyond the paper).
//
// All four reclaim their nodes with reference counts: memory consumption
// grows and shrinks with the structure's contents, no thread is ever blocked
// by another thread's delay, and a structure's Close tears it down to zero
// live objects. Close is idempotent, and each structure family's heap types
// are registered lazily the first time one is created.
//
// # Quick start
//
//	sys, err := lfrc.New()
//	if err != nil { ... }
//	d, err := sys.NewDeque()
//	if err != nil { ... }
//	d.PushRight(42)
//	v, ok := d.PopLeft()
//	d.Close() // safe to call again; later calls are no-ops
//	// sys.Stats().Heap.LiveObjects == 0
//
// # Allocation and statistics
//
// The heap's allocator is striped across shards — per-shard free lists and
// bump chunks — so allocation scales with parallelism; WithAllocShards
// overrides the default of runtime.GOMAXPROCS shards (pin it for
// reproducible benchmarks; values are clamped to [1, 64]). Stats returns the
// system's whole accounting in one snapshot — heap counters, LFRC operation
// counters, per-shard allocator state, the deferred-reclamation backlog, and
// the fault-injection and degraded-mode sections — with stable JSON tags. It
// is the only stats surface: the former HeapStats and RCStats methods were
// removed in favour of Stats().Heap and Stats().RC.
//
// # Errors
//
// Every error the package returns is, or wraps, one of four sentinels, so
// callers branch with errors.Is instead of string matching: ErrOutOfMemory
// (heap exhausted; with WithHeapPressurePolicy it surfaces only after the
// bounded retry/drain/backoff cycle runs dry), ErrValueRange (payload too
// large for a cell), ErrTooManyTypes (heap type table full), and ErrClosed
// (operation on a structure after its Close).
//
// # Fault injection and degraded mode
//
// WithFaultPlan arms a deterministic fault injector inside the LFRC
// operations' CAS/DCAS attempts, the structures' retry loops, and the
// allocator: an injected failure makes the code take exactly the path a lost
// race or exhausted heap takes, and the firing schedule is a pure function
// of (seed, point, attempt) — same WithFaultSeed, same schedule.
// WithHeapPressurePolicy independently arms graceful degradation under heap
// exhaustion: bounded retries that drain the zombie backlog and back off
// before the error surfaces. Both are off by default at zero hot-path cost.
//
// # Values
//
// Payloads are uint64 values up to MaxValue: the cell's two top bits are
// reserved by the software-MCAS engine and one more bit by the deque's
// value-claiming option.
//
// # Cycles
//
// Reference counting never reclaims cyclic garbage (the paper's Cycle-Free
// Garbage criterion). The provided structures keep their garbage acyclic; if
// you build your own structures on System.RC and cannot, run
// System.Collect — the stop-the-world tracing backup collector the paper's
// §7 proposes — at quiescent points.
package lfrc
