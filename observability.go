package lfrc

import (
	"time"

	"lfrc/internal/lifecycle"
)

// ObservabilityOptions configures the whole observability stack — flight
// recorder, contention observatory, lifecycle ledger, invariant auditor —
// in one struct option, mirroring WithTimeline/WithWatchdog. The zero value
// changes nothing; each field only tightens the configuration, so multiple
// WithObservability options (and the single-knob wrappers below) compose:
// later options add to earlier ones rather than resetting them.
type ObservabilityOptions struct {
	// Observer installs the flight recorder at its default sampling (1 in
	// 64 operations): a sampled, allocation-free, lock-free trace of LFRC
	// and allocator operations plus latency and retry digests, read back
	// with System.Trace. Any other field being set implies it.
	Observer bool

	// SampleEvery sets the flight recorder's op-sampling interval to
	// 1-in-n. 1 records every operation; 0 keeps the default; a negative
	// value installs the recorder with recording disabled, which isolates
	// its fixed hot-path cost (the "disabled" mode of experiment O1).
	SampleEvery int

	// Contention enables the DCAS contention observatory: every LFRC and
	// deque retry loop reports its failed DCAS/CAS attempts per memory
	// cell — blame split across the comparands by re-reading them — and
	// the flight recorder's aggregation tap charges the retried fraction
	// of each sampled operation's latency to its cell as wasted work.
	// Read it back with System.ContentionReport, the human report on
	// /debug/lfrc/contention, Prometheus lfrc_contention_* series, or the
	// pprof profile on /debug/lfrc/contention.pb.gz. Uncontended
	// operations record nothing, so the overhead concentrates on paths
	// that are already losing races.
	Contention bool

	// LifecycleEvery enables the sampled per-object lifecycle ledger
	// tracking one in every n allocations from birth: every subsequent
	// event touching a selected object — including operations op sampling
	// skips — is appended to its timeline with goroutine attribution.
	// Read timelines back with System.Timeline, population reports with
	// System.Population, and export with System.WriteChromeTrace. 1
	// tracks every object; 0 leaves the ledger as previously configured
	// (off by default); a negative value installs it with object sampling
	// off (the "disabled" mode of experiment O2, costing only the
	// recorder's nil sink check).
	LifecycleEvery int

	// AuditEvery starts the online invariant auditor sweeping the
	// lifecycle ledger at this interval: it cross-checks tracked objects
	// against the heap and flags leak candidates, use-after-free, double
	// frees, and stuck zombies (see System.Violations), capturing a
	// flight-recorder postmortem per new finding. It implies a
	// default-sampling ledger when none was requested; 0 leaves the
	// auditor off; a negative interval means the 100ms default. Call
	// System.Close to stop the auditor.
	AuditEvery time.Duration
}

// WithObservability applies an ObservabilityOptions bundle. It is the
// one-stop way to arm diagnosis layers; the historical single-knob options
// (WithObserver, WithTraceSampling, WithContention, WithLifecycleLedger,
// WithLifecycleAudit) survive as thin wrappers around it.
func WithObservability(o ObservabilityOptions) Option {
	return optionFunc(func(c *config) {
		if o.Observer || o.SampleEvery != 0 || o.Contention || o.LifecycleEvery != 0 || o.AuditEvery != 0 {
			c.observer = true
		}
		if o.SampleEvery > 0 {
			c.sampleEvery = o.SampleEvery
		} else if o.SampleEvery < 0 {
			c.sampleEvery = 0 // installed, recording off
		}
		if o.Contention {
			c.contention = true
		}
		if o.LifecycleEvery > 0 {
			c.lifecycleEvery = o.LifecycleEvery + 1 // internal encoding: 0 = off, k+1 = every k
		} else if o.LifecycleEvery < 0 {
			c.lifecycleEvery = 1 // installed, object sampling off
		}
		if o.AuditEvery != 0 {
			if c.lifecycleEvery == 0 {
				c.lifecycleEvery = lifecycle.DefaultSampleEvery + 1
			}
			iv := o.AuditEvery
			if iv < 0 {
				iv = 100 * time.Millisecond
			}
			c.auditEvery = iv
		}
	})
}

// WithObserver enables or disables the flight recorder (see
// ObservabilityOptions.Observer). WithObserver(true) is shorthand for
// WithObservability(ObservabilityOptions{Observer: true}); false is the one
// spelling that can switch an already-requested recorder back off.
func WithObserver(on bool) Option {
	if on {
		return WithObservability(ObservabilityOptions{Observer: true})
	}
	return optionFunc(func(c *config) { c.observer = false })
}

// WithTraceSampling sets the flight recorder's sampling interval to 1-in-n
// operations and implies the recorder (see ObservabilityOptions.SampleEvery).
// n == 1 records every operation; n == 0 installs the recorder with
// recording disabled.
func WithTraceSampling(n int) Option {
	switch {
	case n == 0:
		n = -1 // struct encoding for installed-but-off
	case n < 0:
		n = 0 // historical behavior: nonsense input keeps the default
	}
	return WithObservability(ObservabilityOptions{SampleEvery: n})
}

// WithContention enables the DCAS contention observatory (see
// ObservabilityOptions.Contention). WithContention(true) is shorthand for
// WithObservability(ObservabilityOptions{Contention: true}); false switches
// a previously requested observatory back off.
func WithContention(on bool) Option {
	if on {
		return WithObservability(ObservabilityOptions{Contention: true})
	}
	return optionFunc(func(c *config) { c.contention = false })
}

// WithLifecycleLedger enables the per-object lifecycle ledger tracking
// 1-in-n allocations (see ObservabilityOptions.LifecycleEvery). n == 1
// tracks every object; n <= 0 installs the ledger with sampling off.
func WithLifecycleLedger(n int) Option {
	if n <= 0 {
		n = -1
	}
	return WithObservability(ObservabilityOptions{LifecycleEvery: n})
}

// WithLifecycleAudit starts the online invariant auditor at the given
// interval (see ObservabilityOptions.AuditEvery); an interval <= 0 means
// the 100ms default.
func WithLifecycleAudit(interval time.Duration) Option {
	if interval <= 0 {
		interval = -1
	}
	return WithObservability(ObservabilityOptions{AuditEvery: interval})
}
