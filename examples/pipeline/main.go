// Pipeline: a three-stage producer/transform/consumer pipeline over LFRC
// Michael–Scott queues, with live heap telemetry. The point being
// demonstrated is the paper's §1 memory claim: the pipeline's simulated-heap
// footprint tracks the number of in-flight items — it balloons when a stage
// stalls and shrinks all the way back when the backlog drains, because freed
// nodes really are freed.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lfrc"
)

const (
	items     = 30_000
	stallAt   = 10_000 // the consumer naps once this many items are through
	stallTime = 50 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	runtime.GOMAXPROCS(4)
	sys, err := lfrc.New()
	if err != nil {
		return err
	}

	stage1, err := sys.NewQueue() // producer -> transformer
	if err != nil {
		return err
	}
	stage2, err := sys.NewQueue() // transformer -> consumer
	if err != nil {
		return err
	}

	var (
		produced, transformed, consumed atomic.Int64
		checksumIn, checksumOut         atomic.Uint64
		peakWords                       atomic.Int64
		wg                              sync.WaitGroup
	)

	// Telemetry: sample the heap while the pipeline runs.
	stopTelemetry := make(chan struct{})
	telemetryDone := make(chan struct{})
	go func() {
		defer close(telemetryDone)
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				w := sys.Stats().Heap.LiveWords
				for {
					p := peakWords.Load()
					if w <= p || peakWords.CompareAndSwap(p, w) {
						break
					}
				}
			case <-stopTelemetry:
				return
			}
		}
	}()

	// Stage 1: producer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := lfrc.Value(1); i <= items; i++ {
			for stage1.Enqueue(i) != nil {
				runtime.Gosched()
			}
			checksumIn.Add(i)
			produced.Add(1)
		}
	}()

	// Stage 2: transformer (doubles each item).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for transformed.Load() < items {
			v, ok := stage1.Dequeue()
			if !ok {
				runtime.Gosched()
				continue
			}
			for stage2.Enqueue(v*2) != nil {
				runtime.Gosched()
			}
			transformed.Add(1)
		}
	}()

	// Stage 3: consumer, with a deliberate mid-run stall to build backlog.
	wg.Add(1)
	go func() {
		defer wg.Done()
		stalled := false
		for consumed.Load() < items {
			v, ok := stage2.Dequeue()
			if !ok {
				runtime.Gosched()
				continue
			}
			checksumOut.Add(v)
			if consumed.Add(1) == stallAt && !stalled {
				stalled = true
				fmt.Printf("consumer stalling %v at item %d; backlog will grow...\n", stallTime, stallAt)
				time.Sleep(stallTime)
			}
		}
	}()

	wg.Wait()
	close(stopTelemetry)
	<-telemetryDone

	restingBefore := sys.Stats().Heap.LiveWords
	fmt.Printf("pipeline done: produced=%d transformed=%d consumed=%d\n",
		produced.Load(), transformed.Load(), consumed.Load())
	if got, want := checksumOut.Load(), 2*checksumIn.Load(); got != want {
		return fmt.Errorf("checksum mismatch: %d != %d", got, want)
	}
	fmt.Printf("checksum verified (out == 2 x in)\n")
	fmt.Printf("heap: peak %d live words during backlog, %d at drain (grew and shrank)\n",
		peakWords.Load(), restingBefore)

	stage1.Close()
	stage2.Close()
	hs := sys.Stats().Heap
	fmt.Printf("after close: %d live objects (want 0)\n", hs.LiveObjects)
	if hs.LiveObjects != 0 {
		return fmt.Errorf("leaked %d objects", hs.LiveObjects)
	}
	return nil
}
