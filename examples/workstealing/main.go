// Work stealing: the motivating application for lock-free deques. Each
// worker owns an LFRC deque and treats it as a stack (push/pop on the right)
// while idle workers steal from the opposite end (pop on the left) — the
// access pattern work-stealing schedulers rely on, here with no garbage
// collector and no locks.
//
// The workload is a recursive task tree: every task either produces child
// tasks or a unit of "work" (a leaf). The run is correct if exactly the
// expected number of leaves is executed — stolen tasks must be neither lost
// nor duplicated.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"lfrc"
)

const (
	numWorkers = 4
	treeDepth  = 14 // 2^14 leaves
)

// A task is encoded as a value: depth in the low byte. Tasks above depth 0
// fork two children; depth-0 tasks are leaves.
func encodeTask(depth int, id uint64) lfrc.Value {
	return lfrc.Value(id)<<8 | lfrc.Value(depth)
}

func decodeTask(v lfrc.Value) (depth int, id uint64) {
	return int(v & 0xFF), uint64(v >> 8)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	runtime.GOMAXPROCS(numWorkers)
	sys, err := lfrc.New()
	if err != nil {
		return err
	}

	// One deque per worker. Value claiming guarantees every stolen task
	// executes exactly once.
	deques := make([]*lfrc.Deque, numWorkers)
	for i := range deques {
		if deques[i], err = sys.NewDeque(lfrc.WithValueClaiming()); err != nil {
			return err
		}
	}

	var (
		leaves   atomic.Int64
		inFlight atomic.Int64 // tasks pushed but not yet executed
		steals   atomic.Int64
		nextID   atomic.Uint64
	)

	// Seed worker 0 with the root task.
	inFlight.Add(1)
	if err := deques[0].PushRight(encodeTask(treeDepth, nextID.Add(1))); err != nil {
		return err
	}

	execute := func(w int, v lfrc.Value) error {
		depth, _ := decodeTask(v)
		if depth == 0 {
			leaves.Add(1)
			inFlight.Add(-1)
			return nil
		}
		// Fork: push both children onto our own deque (LIFO end).
		inFlight.Add(2 - 1) // two children in, this task out
		for c := 0; c < 2; c++ {
			if err := deques[w].PushRight(encodeTask(depth-1, nextID.Add(1))); err != nil {
				return err
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, numWorkers)
	for w := 0; w < numWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			for inFlight.Load() > 0 {
				// Own work first: LIFO from the right.
				if v, ok := deques[w].PopRight(); ok {
					if err := execute(w, v); err != nil {
						errs <- err
						return
					}
					continue
				}
				// Otherwise steal: FIFO from a victim's left end.
				victim := rng.Intn(numWorkers)
				if victim == w {
					victim = (victim + 1) % numWorkers
				}
				if v, ok := deques[victim].PopLeft(); ok {
					steals.Add(1)
					if err := execute(w, v); err != nil {
						errs <- err
						return
					}
					continue
				}
				runtime.Gosched()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	want := int64(1) << treeDepth
	fmt.Printf("executed %d leaf tasks (want %d), %d steals across %d workers\n",
		leaves.Load(), want, steals.Load(), numWorkers)
	if leaves.Load() != want {
		return fmt.Errorf("task accounting broken: %d != %d", leaves.Load(), want)
	}

	for _, d := range deques {
		d.Close()
	}
	hs := sys.Stats().Heap
	fmt.Printf("heap after close: %d live objects (want 0), %d allocs recycled %d times\n",
		hs.LiveObjects, hs.Allocs, hs.Recycles)
	if hs.LiveObjects != 0 {
		return fmt.Errorf("leaked %d objects", hs.LiveObjects)
	}
	return nil
}
