// Memshrink: a direct, printable demonstration of the paper's §1 claim that
// LFRC "allows the memory consumption of the implementation to grow and
// shrink over time, without imposing any restrictions on the underlying
// memory allocation mechanisms".
//
// The program drives a deque through repeated grow/drain waves of shrinking
// amplitude and prints the simulated heap's live words after every phase as
// an ASCII bar chart: the footprint follows the contents down as well as up.
// A tracing-GC runtime would show this only after a collection; a
// type-stable free-list scheme (see the valois baseline and experiment E3)
// would never come down at all.
package main

import (
	"fmt"
	"log"
	"strings"

	"lfrc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := lfrc.New()
	if err != nil {
		return err
	}
	d, err := sys.NewDeque()
	if err != nil {
		return err
	}

	resting := sys.Stats().Heap.LiveWords
	waves := []int{8000, 4000, 2000, 1000}
	maxWords := int64(0)

	type sample struct {
		label string
		words int64
	}
	var samples []sample
	record := func(label string) {
		w := sys.Stats().Heap.LiveWords
		if w > maxWords {
			maxWords = w
		}
		samples = append(samples, sample{label: label, words: w})
	}
	record("start")

	next := lfrc.Value(1)
	for _, n := range waves {
		for i := 0; i < n; i++ {
			if err := d.PushRight(next); err != nil {
				return err
			}
			next++
		}
		record(fmt.Sprintf("grow +%d", n))
		for {
			if _, ok := d.PopLeft(); !ok {
				break
			}
		}
		record("drain")
	}

	fmt.Println("live simulated-heap words after each phase:")
	for _, s := range samples {
		bar := int(float64(s.words) / float64(maxWords) * 50)
		fmt.Printf("%-12s %8d |%s\n", s.label, s.words, strings.Repeat("#", bar))
	}

	final := sys.Stats().Heap.LiveWords
	if final != resting {
		return fmt.Errorf("footprint did not return to resting level: %d != %d", final, resting)
	}
	fmt.Printf("\nfootprint returned to its resting level (%d words) after every drain\n", resting)

	hs := sys.Stats().Heap
	fmt.Printf("allocator: %d allocs, %d frees, %d recycled slots, high water %d words\n",
		hs.Allocs, hs.Frees, hs.Recycles, hs.HighWater)

	d.Close()
	if got := sys.Stats().Heap.LiveObjects; got != 0 {
		return fmt.Errorf("leaked %d objects", got)
	}
	return nil
}
