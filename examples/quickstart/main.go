// Quickstart: create an LFRC system, use the three GC-independent
// structures, and verify that closing them returns the heap to zero live
// objects — the paper's two reference-count guarantees in action.
package main

import (
	"fmt"
	"log"

	"lfrc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A System bundles the simulated manual heap, the DCAS engine and the
	// LFRC operations. EngineLocking models the hardware DCAS the paper
	// assumes; try lfrc.WithEngine(lfrc.EngineMCAS) for the lock-free
	// software construction.
	sys, err := lfrc.New()
	if err != nil {
		return err
	}
	fmt.Printf("system ready (engine=%s)\n\n", sys.EngineName())

	// The Snark deque: the paper's worked example.
	d, err := sys.NewDeque()
	if err != nil {
		return err
	}
	for v := lfrc.Value(1); v <= 5; v++ {
		if err := d.PushRight(v * 10); err != nil {
			return err
		}
	}
	fmt.Print("deque, drained from alternating ends: ")
	for {
		v, ok := d.PopLeft()
		if !ok {
			break
		}
		fmt.Printf("%d ", v)
		if v, ok := d.PopRight(); ok {
			fmt.Printf("%d ", v)
		}
	}
	fmt.Println()

	// A FIFO queue and a LIFO stack, both LFRC-transformed.
	q, err := sys.NewQueue()
	if err != nil {
		return err
	}
	st, err := sys.NewStack()
	if err != nil {
		return err
	}
	for v := lfrc.Value(1); v <= 3; v++ {
		if err := q.Enqueue(v); err != nil {
			return err
		}
		if err := st.Push(v); err != nil {
			return err
		}
	}
	fmt.Print("queue (FIFO): ")
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		fmt.Printf("%d ", v)
	}
	fmt.Print("\nstack (LIFO): ")
	for {
		v, ok := st.Pop()
		if !ok {
			break
		}
		fmt.Printf("%d ", v)
	}
	fmt.Println()

	// Tear down: reference counting frees every node deterministically.
	before := sys.Stats().Heap
	d.Close()
	q.Close()
	st.Close()
	after := sys.Stats().Heap
	fmt.Printf("\nheap: %d allocs, %d frees, live %d -> %d (want 0), corruptions %d\n",
		after.Allocs, after.Frees, before.LiveObjects, after.LiveObjects, after.Corruptions)

	// The reference counts themselves can be audited at quiescence.
	if violations := sys.Audit(); len(violations) > 0 {
		return fmt.Errorf("rc audit failed: %v", violations)
	}
	fmt.Println("rc audit: clean")
	return nil
}
