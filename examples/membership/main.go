// Membership: concurrent de-duplication with the lock-free sorted Set.
// Several scanner goroutines race to claim "documents" (numeric ids drawn
// from overlapping ranges); Set.Insert's exactly-once semantics guarantee
// every id is processed by exactly one scanner, with no locks, no Go GC
// involvement for the set's own memory, and deterministic teardown.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"lfrc"
)

const (
	scanners  = 4
	idSpace   = 5_000
	drawsEach = 20_000 // heavy overlap: ~16x oversampling of the id space
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	runtime.GOMAXPROCS(scanners)
	sys, err := lfrc.New()
	if err != nil {
		return err
	}
	seen, err := sys.NewSet()
	if err != nil {
		return err
	}

	var (
		processed atomic.Int64 // ids claimed (first sighting)
		skipped   atomic.Int64 // duplicate sightings
		perWorker [scanners]int64
		wg        sync.WaitGroup
	)
	errs := make(chan error, scanners)
	for w := 0; w < scanners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < drawsEach; i++ {
				id := lfrc.Value(rng.Intn(idSpace))
				claimed, err := seen.Insert(id)
				if err != nil {
					errs <- err
					return
				}
				if claimed {
					processed.Add(1)
					perWorker[w]++
				} else {
					skipped.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	fmt.Printf("scanners drew %d ids total; %d processed exactly once, %d duplicates skipped\n",
		scanners*drawsEach, processed.Load(), skipped.Load())
	for w, n := range perWorker {
		fmt.Printf("  scanner %d claimed %d ids\n", w, n)
	}

	if got := int64(seen.Len()); got != processed.Load() {
		return fmt.Errorf("set size %d != processed %d", got, processed.Load())
	}
	// Every drawn id was claimed by someone: with 16x oversampling the
	// whole space should be covered.
	if processed.Load() != idSpace {
		fmt.Printf("note: %d of %d ids never drawn\n", int64(idSpace)-processed.Load(), idSpace)
	}
	if audit := sys.Audit(); len(audit) != 0 {
		return fmt.Errorf("rc audit failed: %v", audit)
	}
	fmt.Println("rc audit: clean")

	seen.Close()
	if got := sys.Stats().Heap.LiveObjects; got != 0 {
		return fmt.Errorf("leaked %d objects", got)
	}
	fmt.Println("set closed; heap back to zero live objects")
	return nil
}
