package lfrc_test

import (
	"errors"
	"sync"
	"testing"

	"lfrc"
)

// TestReclaimBackendSweep is the cross-backend acceptance gate for the
// Reclaimer seam: the fault/chaos/auditor sweep that has always guarded the
// LFRC backend must pass bit-for-bit identically in structure on the epoch
// backend — same plan (including the reclaim.* points), same seeds, same
// invariants. Reclamation is policy, not safety, so no assertion here is
// allowed to be backend-conditional except the final backend-identity and
// epoch-progress checks. Run under -race by `make check-reclaim`.
func TestReclaimBackendSweep(t *testing.T) {
	const plan = "core.*:p=0.01;reclaim.*:p=0.05;snark.*:p=0.02;queue.*:p=0.02;" +
		"stack.*:p=0.02;set.*:p=0.02;mem.alloc:p=0.002;mem.alloc.slow:p=0.01"
	for _, rec := range []lfrc.Reclaimer{lfrc.ReclaimerLFRC, lfrc.ReclaimerEpoch} {
		rec := rec
		t.Run(rec.String(), func(t *testing.T) {
			for _, seed := range []uint64{1, 7, 20260808} {
				seed := seed
				t.Run("seed="+itoa(seed), func(t *testing.T) {
					sweepOneBackend(t, rec, plan, seed)
				})
			}
		})
	}
}

func sweepOneBackend(t *testing.T, rec lfrc.Reclaimer, plan string, seed uint64) {
	sweepOneConfig(t, rec, 0, plan, seed)
}

// sweepOneConfig runs the fault/chaos/auditor storm on one {reclaimer, rc
// strategy} cell; strat 0 keeps the default (figure2). Extra options (the RC
// sweep passes WithEngine) are appended last.
func sweepOneConfig(t *testing.T, rec lfrc.Reclaimer, strat lfrc.RCStrategy, plan string, seed uint64, extra ...lfrc.Option) {
	opts := []lfrc.Option{
		lfrc.WithReclamation(rec),
		lfrc.WithFaultPlan(plan),
		lfrc.WithFaultSeed(seed),
		lfrc.WithHeapPressurePolicy(lfrc.DefaultHeapPressurePolicy()),
		lfrc.WithLifecycleLedger(1),
	}
	if strat != 0 {
		opts = append(opts, lfrc.WithRCStrategy(strat))
	}
	opts = append(opts, extra...)
	sys, err := lfrc.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if got := sys.ReclaimerName(); got != rec.String() {
		t.Fatalf("system runs on %q, want %q", got, rec)
	}
	if strat != 0 {
		if got := sys.RCStrategyName(); got != strat.String() {
			t.Fatalf("system counts with %q, want %q", got, strat)
		}
	}
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.NewQueue()
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.NewStack()
	if err != nil {
		t.Fatal(err)
	}
	set, err := sys.NewSet()
	if err != nil {
		t.Fatal(err)
	}

	const workers, opsPer = 4, 400
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			rng := id*0x9E3779B97F4A7C15 + seed
			for i := 0; i < opsPer; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				v := lfrc.Value(rng >> 16 & 0xFFFF)
				var err error
				switch rng % 9 {
				case 0:
					err = d.PushLeft(v)
				case 1:
					err = d.PushRight(v)
				case 2:
					d.PopLeft()
				case 3:
					err = q.Enqueue(v)
				case 4:
					q.Dequeue()
				case 5:
					err = st.Push(v)
				case 6:
					_, err = set.Insert(v)
				case 7:
					st.Pop()
					set.Delete(v)
				case 8:
					// Concurrent maintenance drain: exercises the backend's
					// pop/flush path (and its reclaim.drain / reclaim.epoch
					// fault points) while retirements race it.
					sys.DrainZombies(32)
				}
				if err != nil && !errors.Is(err, lfrc.ErrOutOfMemory) {
					errc <- err
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("worker error: %v", err)
	}

	if vs := sys.AuditPass(); len(vs) != 0 {
		t.Errorf("lifecycle auditor flagged %d violations: %+v", len(vs), vs[0])
	}
	if all := sys.Violations(); len(all) != 0 {
		t.Errorf("%d lifecycle violations accumulated", len(all))
	}
	if audit := sys.Audit(); len(audit) != 0 {
		t.Errorf("rc audit: %v", audit)
	}
	d.Close()
	q.Close()
	st.Close()
	set.Close()
	sys.DrainZombies(0)

	s := sys.Stats()
	if live := s.Heap.LiveObjects; live != 0 {
		t.Errorf("%d objects leaked after close+drain", live)
	}
	if s.Reclaim.Pending != 0 || s.Zombies != 0 {
		t.Errorf("deferred backlog not drained: pending=%d zombies=%d", s.Reclaim.Pending, s.Zombies)
	}
	if s.Reclaim.Backend != rec.String() {
		t.Errorf("Stats.Reclaim.Backend = %q, want %q", s.Reclaim.Backend, rec)
	}
	if strat != 0 && s.RCStrategy != strat.String() {
		t.Errorf("Stats.RCStrategy = %q, want %q", s.RCStrategy, strat)
	}
	if s.Reclaim.Freed < s.Reclaim.Retired {
		t.Errorf("freed %d < retired %d after full drain", s.Reclaim.Freed, s.Reclaim.Retired)
	}
	if s.Fault.Injected == 0 {
		t.Error("sweep injected nothing; plan or workload is off")
	}
	if rec == lfrc.ReclaimerEpoch && s.Reclaim.EpochAdvances == 0 {
		t.Error("epoch backend never advanced its epoch")
	}
}
