package lfrc

import (
	"lfrc/internal/msqueue"
	"lfrc/internal/snark"
	"lfrc/internal/stackrc"
)

// DequeOption configures a Deque.
type DequeOption interface {
	applyDeque(*dequeConfig)
}

type dequeConfig struct {
	claiming bool
}

type dequeOptionFunc func(*dequeConfig)

func (f dequeOptionFunc) applyDeque(c *dequeConfig) { f(c) }

// WithValueClaiming makes pops claim each node's value with a CAS before
// returning it. The published Snark algorithm has two races discovered after
// publication (Doherty et al., SPAA 2004) that can double-report a value
// near emptiness; claiming hardens delivery to at-most-once. Enable it when
// values must not be delivered twice; leave it off to run the
// paper-faithful algorithm.
func WithValueClaiming() DequeOption {
	return dequeOptionFunc(func(c *dequeConfig) { c.claiming = true })
}

// Deque is a GC-independent Snark lock-free double-ended queue.
type Deque struct {
	d   *snark.Deque
	sys *System
}

// NewDeque creates an empty deque on this system.
func (s *System) NewDeque(opts ...DequeOption) (*Deque, error) {
	var cfg dequeConfig
	for _, o := range opts {
		o.applyDeque(&cfg)
	}
	var sopts []snark.Option
	if cfg.claiming {
		sopts = append(sopts, snark.WithValueClaiming())
	}
	d, err := snark.New(s.rc, s.snarkTypes, sopts...)
	if err != nil {
		return nil, err
	}
	s.collector.AddRoot(d.Anchor())
	return &Deque{d: d, sys: s}, nil
}

// PushLeft prepends v. It fails only if v exceeds MaxValue or the heap is
// exhausted.
func (d *Deque) PushLeft(v Value) error { return d.d.PushLeft(v) }

// PushRight appends v. It fails only if v exceeds MaxValue or the heap is
// exhausted.
func (d *Deque) PushRight(v Value) error { return d.d.PushRight(v) }

// PopLeft removes and returns the leftmost value; ok is false when the
// deque is observed empty.
func (d *Deque) PopLeft() (v Value, ok bool) { return d.d.PopLeft() }

// PopRight removes and returns the rightmost value; ok is false when the
// deque is observed empty.
func (d *Deque) PopRight() (v Value, ok bool) { return d.d.PopRight() }

// Close drains the deque and releases all of its memory. It must not run
// concurrently with other operations on this deque, and the deque must not
// be used afterwards.
func (d *Deque) Close() {
	if d.d.Anchor() != 0 {
		d.sys.collector.RemoveRoot(d.d.Anchor())
	}
	d.d.Close()
}

// Queue is a GC-independent Michael–Scott lock-free FIFO queue.
type Queue struct {
	q   *msqueue.Queue
	sys *System
}

// NewQueue creates an empty queue on this system.
func (s *System) NewQueue() (*Queue, error) {
	q, err := msqueue.New(s.rc, s.queueTypes)
	if err != nil {
		return nil, err
	}
	s.collector.AddRoot(q.Anchor())
	return &Queue{q: q, sys: s}, nil
}

// Enqueue appends v. It fails only if v exceeds the representable range or
// the heap is exhausted.
func (q *Queue) Enqueue(v Value) error { return q.q.Enqueue(v) }

// Dequeue removes and returns the oldest value; ok is false when the queue
// is observed empty.
func (q *Queue) Dequeue() (v Value, ok bool) { return q.q.Dequeue() }

// Close drains the queue and releases all of its memory. Same restrictions
// as Deque.Close.
func (q *Queue) Close() {
	if q.q.Anchor() != 0 {
		q.sys.collector.RemoveRoot(q.q.Anchor())
	}
	q.q.Close()
}

// Stack is a GC-independent Treiber lock-free stack.
type Stack struct {
	s   *stackrc.Stack
	sys *System
}

// NewStack creates an empty stack on this system.
func (s *System) NewStack() (*Stack, error) {
	st, err := stackrc.New(s.rc, s.stackTypes)
	if err != nil {
		return nil, err
	}
	s.collector.AddRoot(st.Anchor())
	return &Stack{s: st, sys: s}, nil
}

// Push places v on top of the stack.
func (s *Stack) Push(v Value) error { return s.s.Push(v) }

// Pop removes and returns the top value; ok is false when the stack is
// observed empty.
func (s *Stack) Pop() (v Value, ok bool) { return s.s.Pop() }

// Close drains the stack and releases all of its memory. Same restrictions
// as Deque.Close.
func (s *Stack) Close() {
	if s.s.Anchor() != 0 {
		s.sys.collector.RemoveRoot(s.s.Anchor())
	}
	s.s.Close()
}
