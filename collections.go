package lfrc

import (
	"sync/atomic"

	"lfrc/internal/mem"
	"lfrc/internal/msqueue"
	"lfrc/internal/snark"
	"lfrc/internal/stackrc"
)

// handle is the lifecycle state embedded in every structure wrapper: it
// registers the structure's anchor as a tracing-collector root at creation
// and deregisters it on the first Close.
type handle struct {
	sys    *System
	anchor mem.Ref
	closed atomic.Bool
	drain  func()
}

// newHandle roots anchor with the collector and returns the handle that will
// unroot it; drain is the structure's own teardown, run once by Close.
func (s *System) newHandle(anchor mem.Ref, drain func()) handle {
	if anchor != 0 {
		s.collector.AddRoot(anchor)
	}
	return handle{sys: s, anchor: anchor, drain: drain}
}

// Close drains the structure and releases all of its memory. It must not run
// concurrently with other operations on the structure, and the structure
// must not be used afterwards. Closing an already-closed structure is a
// no-op.
func (h *handle) Close() {
	if h.closed.Swap(true) {
		return
	}
	if h.anchor != 0 {
		h.sys.collector.RemoveRoot(h.anchor)
	}
	h.drain()
}

// DequeOption configures a Deque.
type DequeOption interface {
	applyDeque(*dequeConfig)
}

type dequeConfig struct {
	claiming bool
}

type dequeOptionFunc func(*dequeConfig)

func (f dequeOptionFunc) applyDeque(c *dequeConfig) { f(c) }

// WithValueClaiming makes pops claim each node's value with a CAS before
// returning it. The published Snark algorithm has two races discovered after
// publication (Doherty et al., SPAA 2004) that can double-report a value
// near emptiness; claiming hardens delivery to at-most-once. Enable it when
// values must not be delivered twice; leave it off to run the
// paper-faithful algorithm.
func WithValueClaiming() DequeOption {
	return dequeOptionFunc(func(c *dequeConfig) { c.claiming = true })
}

// Deque is a GC-independent Snark lock-free double-ended queue.
type Deque struct {
	d *snark.Deque
	handle
}

// NewDeque creates an empty deque on this system.
func (s *System) NewDeque(opts ...DequeOption) (*Deque, error) {
	var cfg dequeConfig
	for _, o := range opts {
		o.applyDeque(&cfg)
	}
	var sopts []snark.Option
	if cfg.claiming {
		sopts = append(sopts, snark.WithValueClaiming())
	}
	ts, err := s.snarkTypes.get(s.heap, snark.RegisterTypes)
	if err != nil {
		return nil, err
	}
	d, err := snark.New(s.rc, ts, sopts...)
	if err != nil {
		return nil, err
	}
	return &Deque{d: d, handle: s.newHandle(d.Anchor(), d.Close)}, nil
}

// PushLeft prepends v. It fails only if v exceeds MaxValue or the heap is
// exhausted.
func (d *Deque) PushLeft(v Value) error { return d.d.PushLeft(v) }

// PushRight appends v. It fails only if v exceeds MaxValue or the heap is
// exhausted.
func (d *Deque) PushRight(v Value) error { return d.d.PushRight(v) }

// PopLeft removes and returns the leftmost value; ok is false when the
// deque is observed empty.
func (d *Deque) PopLeft() (v Value, ok bool) { return d.d.PopLeft() }

// PopRight removes and returns the rightmost value; ok is false when the
// deque is observed empty.
func (d *Deque) PopRight() (v Value, ok bool) { return d.d.PopRight() }

// Queue is a GC-independent Michael–Scott lock-free FIFO queue.
type Queue struct {
	q *msqueue.Queue
	handle
}

// NewQueue creates an empty queue on this system.
func (s *System) NewQueue() (*Queue, error) {
	ts, err := s.queueTypes.get(s.heap, msqueue.RegisterTypes)
	if err != nil {
		return nil, err
	}
	q, err := msqueue.New(s.rc, ts)
	if err != nil {
		return nil, err
	}
	return &Queue{q: q, handle: s.newHandle(q.Anchor(), q.Close)}, nil
}

// Enqueue appends v. It fails only if v exceeds the representable range or
// the heap is exhausted.
func (q *Queue) Enqueue(v Value) error { return q.q.Enqueue(v) }

// Dequeue removes and returns the oldest value; ok is false when the queue
// is observed empty.
func (q *Queue) Dequeue() (v Value, ok bool) { return q.q.Dequeue() }

// Stack is a GC-independent Treiber lock-free stack.
type Stack struct {
	s *stackrc.Stack
	handle
}

// NewStack creates an empty stack on this system.
func (s *System) NewStack() (*Stack, error) {
	ts, err := s.stackTypes.get(s.heap, stackrc.RegisterTypes)
	if err != nil {
		return nil, err
	}
	st, err := stackrc.New(s.rc, ts)
	if err != nil {
		return nil, err
	}
	return &Stack{s: st, handle: s.newHandle(st.Anchor(), st.Close)}, nil
}

// Push places v on top of the stack.
func (s *Stack) Push(v Value) error { return s.s.Push(v) }

// Pop removes and returns the top value; ok is false when the stack is
// observed empty.
func (s *Stack) Pop() (v Value, ok bool) { return s.s.Pop() }
