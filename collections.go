package lfrc

import (
	"iter"
	"sync/atomic"

	"lfrc/internal/mem"
	"lfrc/internal/msqueue"
	"lfrc/internal/snark"
	"lfrc/internal/stackrc"
)

// handle is the lifecycle state embedded in every structure wrapper: it
// registers the structure's anchor as a tracing-collector root at creation
// and deregisters it on the first Close.
type handle struct {
	sys    *System
	anchor mem.Ref
	closed atomic.Bool
	drain  func()
}

// newHandle roots anchor with the collector — labeled with the structure
// kind, so the heap census and DOT export can say *which* structure keeps a
// subgraph alive — and returns the handle that will unroot it; drain is the
// structure's own teardown, run once by Close.
func (s *System) newHandle(anchor mem.Ref, kind string, drain func()) handle {
	if anchor != 0 {
		s.collector.AddNamedRoot(anchor, kind)
	}
	return handle{sys: s, anchor: anchor, drain: drain}
}

// Close drains the structure and releases all of its memory. It must not run
// concurrently with other operations on the structure, and the structure
// must not be used afterwards. Closing an already-closed structure is a
// no-op.
func (h *handle) Close() {
	if h.closed.Swap(true) {
		return
	}
	if h.anchor != 0 {
		h.sys.collector.RemoveRoot(h.anchor)
	}
	h.drain()
}

// DequeOption configures a Deque.
type DequeOption interface {
	applyDeque(*dequeConfig)
}

type dequeConfig struct {
	claiming bool
}

type dequeOptionFunc func(*dequeConfig)

func (f dequeOptionFunc) applyDeque(c *dequeConfig) { f(c) }

// WithValueClaiming makes pops claim each node's value with a CAS before
// returning it. The published Snark algorithm has two races discovered after
// publication (Doherty et al., SPAA 2004) that can double-report a value
// near emptiness; claiming hardens delivery to at-most-once. Enable it when
// values must not be delivered twice; leave it off to run the
// paper-faithful algorithm.
func WithValueClaiming() DequeOption {
	return dequeOptionFunc(func(c *dequeConfig) { c.claiming = true })
}

// Deque is a GC-independent Snark lock-free double-ended queue.
type Deque struct {
	d *snark.Deque
	handle
}

// NewDeque creates an empty deque on this system.
func (s *System) NewDeque(opts ...DequeOption) (*Deque, error) {
	var cfg dequeConfig
	for _, o := range opts {
		o.applyDeque(&cfg)
	}
	var sopts []snark.Option
	if cfg.claiming {
		sopts = append(sopts, snark.WithValueClaiming())
	}
	ts, err := s.snarkTypes.get(s.heap, snark.RegisterTypes)
	if err != nil {
		return nil, err
	}
	var d *snark.Deque
	if err := s.withPressure(func() error {
		var err error
		d, err = snark.New(s.rc, ts, sopts...)
		return err
	}); err != nil {
		return nil, err
	}
	return &Deque{d: d, handle: s.newHandle(d.Anchor(), "deque", d.Close)}, nil
}

// PushLeft prepends v. It fails with ErrValueRange if v exceeds MaxValue,
// ErrClosed after Close, and ErrOutOfMemory if the heap is exhausted (after
// the heap-pressure policy, if any, has run).
func (d *Deque) PushLeft(v Value) error {
	if d.closed.Load() {
		return ErrClosed
	}
	err := d.d.PushLeft(v)
	if err != nil {
		err = d.sys.retryPressure(err, func() error { return d.d.PushLeft(v) })
	}
	return err
}

// PushRight appends v. It fails with ErrValueRange if v exceeds MaxValue,
// ErrClosed after Close, and ErrOutOfMemory if the heap is exhausted (after
// the heap-pressure policy, if any, has run).
func (d *Deque) PushRight(v Value) error {
	if d.closed.Load() {
		return ErrClosed
	}
	err := d.d.PushRight(v)
	if err != nil {
		err = d.sys.retryPressure(err, func() error { return d.d.PushRight(v) })
	}
	return err
}

// PopLeft removes and returns the leftmost value; ok is false when the
// deque is observed empty.
func (d *Deque) PopLeft() (v Value, ok bool) { return d.d.PopLeft() }

// PopRight removes and returns the rightmost value; ok is false when the
// deque is observed empty.
func (d *Deque) PopRight() (v Value, ok bool) { return d.d.PopRight() }

// Drain returns an iterator that pops values from the left end until the
// deque is observed empty, consuming the deque:
//
//	for v := range d.Drain() { use(v) }
//
// Each value is produced by one PopLeft, so draining is safe to run
// concurrently with other operations — every value is delivered to exactly
// one consumer — though concurrent pushes can of course keep a drain from
// terminating. Breaking out of the loop simply stops popping. A closed
// deque yields nothing.
func (d *Deque) Drain() iter.Seq[Value] {
	return func(yield func(Value) bool) {
		for !d.closed.Load() {
			v, ok := d.d.PopLeft()
			if !ok || !yield(v) {
				return
			}
		}
	}
}

// Queue is a GC-independent Michael–Scott lock-free FIFO queue.
type Queue struct {
	q *msqueue.Queue
	handle
}

// NewQueue creates an empty queue on this system.
func (s *System) NewQueue() (*Queue, error) {
	ts, err := s.queueTypes.get(s.heap, msqueue.RegisterTypes)
	if err != nil {
		return nil, err
	}
	var q *msqueue.Queue
	if err := s.withPressure(func() error {
		var err error
		q, err = msqueue.New(s.rc, ts)
		return err
	}); err != nil {
		return nil, err
	}
	return &Queue{q: q, handle: s.newHandle(q.Anchor(), "queue", q.Close)}, nil
}

// Enqueue appends v. It fails with ErrValueRange if v exceeds the
// representable range, ErrClosed after Close, and ErrOutOfMemory if the heap
// is exhausted (after the heap-pressure policy, if any, has run).
func (q *Queue) Enqueue(v Value) error {
	if q.closed.Load() {
		return ErrClosed
	}
	err := q.q.Enqueue(v)
	if err != nil {
		err = q.sys.retryPressure(err, func() error { return q.q.Enqueue(v) })
	}
	return err
}

// Dequeue removes and returns the oldest value; ok is false when the queue
// is observed empty.
func (q *Queue) Dequeue() (v Value, ok bool) { return q.q.Dequeue() }

// Stack is a GC-independent Treiber lock-free stack.
type Stack struct {
	s *stackrc.Stack
	handle
}

// NewStack creates an empty stack on this system.
func (s *System) NewStack() (*Stack, error) {
	ts, err := s.stackTypes.get(s.heap, stackrc.RegisterTypes)
	if err != nil {
		return nil, err
	}
	var st *stackrc.Stack
	if err := s.withPressure(func() error {
		var err error
		st, err = stackrc.New(s.rc, ts)
		return err
	}); err != nil {
		return nil, err
	}
	return &Stack{s: st, handle: s.newHandle(st.Anchor(), "stack", st.Close)}, nil
}

// Push places v on top of the stack. It fails with ErrValueRange if v
// exceeds MaxValue, ErrClosed after Close, and ErrOutOfMemory if the heap is
// exhausted (after the heap-pressure policy, if any, has run).
func (s *Stack) Push(v Value) error {
	if s.closed.Load() {
		return ErrClosed
	}
	err := s.s.Push(v)
	if err != nil {
		err = s.sys.retryPressure(err, func() error { return s.s.Push(v) })
	}
	return err
}

// Pop removes and returns the top value; ok is false when the stack is
// observed empty.
func (s *Stack) Pop() (v Value, ok bool) { return s.s.Pop() }
