package lfrc

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"lfrc/internal/mem"
)

// diagSystem builds a system with full object tracking (every allocation
// ledgered) and the flight recorder at full sampling, the configuration the
// diagnosis tests want for determinism.
func diagSystem(t *testing.T) (*System, mem.TypeID) {
	t.Helper()
	sys, err := New(WithTraceSampling(1), WithLifecycleLedger(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(sys.Close)
	tid, err := sys.heap.RegisterType(mem.TypeDesc{Name: "diag", NumFields: 2})
	if err != nil {
		t.Fatalf("RegisterType: %v", err)
	}
	return sys, tid
}

// TestAuditorDetectsInjectedLeak injects the paper's no-leak failure mode: a
// client that obtains references and never issues the matching LFRCDestroy.
// The object's count sits above zero forever; the auditor must name it, with
// its ledger timeline, once the track has been idle for enough audit epochs.
func TestAuditorDetectsInjectedLeak(t *testing.T) {
	sys, tid := diagSystem(t)

	victim, err := sys.rc.NewObject(tid)
	if err != nil {
		t.Fatalf("NewObject: %v", err)
	}
	// A second counted reference, whose Destroy we "forget" along with the
	// constructor's: rc sticks at 2.
	var dup mem.Ref
	sys.rc.Copy(&dup, victim)

	var leak Violation
	for i := 0; i < 8 && leak.Kind == ""; i++ {
		for _, v := range sys.AuditPass() {
			if v.Kind == "leak_candidate" && v.Ref == uint32(victim) {
				leak = v
			}
		}
	}
	if leak.Kind == "" {
		t.Fatalf("auditor never flagged the leaked object; violations: %v", sys.Violations())
	}
	if !strings.Contains(leak.Detail, "rc stuck at 2") {
		t.Errorf("detail does not name the stuck count: %q", leak.Detail)
	}
	if len(leak.Timeline.Entries) < 2 {
		t.Errorf("violation timeline too thin: %s", leak.Timeline)
	}
	// The timeline's chain must show the alloc and the copy that built the
	// leaked count.
	rendered := leak.String()
	for _, want := range []string{"alloc", "copy", "1->2"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered violation lacks %q:\n%s", want, rendered)
		}
	}

	// And it surfaced through the existing postmortem pipeline.
	found := false
	for _, pm := range sys.Postmortems() {
		if pm.Ref == uint32(victim) && strings.Contains(pm.Reason, "leak_candidate") {
			found = true
		}
	}
	if !found {
		t.Errorf("no postmortem captured for the leak candidate")
	}

	// The count really is stuck: the object is still live.
	if sys.heap.IsFreed(victim) {
		t.Fatalf("victim was freed; the injected leak did not hold")
	}
}

// TestAuditorDetectsDoubleFreeAndUseAfterFree drives the other guarantee's
// failure modes through the public surface: a deliberate second free of a
// reclaimed slot, and an rc touch through a stale reference after the free.
func TestAuditorDetectsDoubleFreeAndUseAfterFree(t *testing.T) {
	sys, tid := diagSystem(t)

	victim, err := sys.rc.NewObject(tid)
	if err != nil {
		t.Fatalf("NewObject: %v", err)
	}
	sys.rc.Destroy(victim) // rc 1 -> 0: freed
	if !sys.heap.IsFreed(victim) {
		t.Fatalf("victim not freed after Destroy")
	}
	if err := sys.heap.Free(victim); err == nil {
		t.Fatalf("second Free unexpectedly succeeded")
	}
	// A stale reference still "held" by a buggy client: the copy bumps a
	// poisoned rc cell and lands on the timeline after the free event.
	var stale mem.Ref
	sys.rc.Copy(&stale, victim)

	kinds := map[string]Violation{}
	for _, v := range sys.AuditPass() {
		kinds[v.Kind] = v
	}
	df, ok := kinds["double_free"]
	if !ok {
		t.Fatalf("double free not flagged; got %v", sys.Violations())
	}
	if df.Ref != uint32(victim) || !strings.Contains(df.Detail, "already freed") {
		t.Errorf("double-free violation wrong: %+v", df)
	}
	uaf, ok := kinds["use_after_free"]
	if !ok {
		t.Fatalf("use after free not flagged; got %v", sys.Violations())
	}
	if uaf.Ref != uint32(victim) || !strings.Contains(uaf.Detail, "after its free") {
		t.Errorf("use-after-free violation wrong: %+v", uaf)
	}
	// The timeline tells the whole story: birth, destroy-to-zero, free,
	// rejected free, and the stale copy.
	tl, ok := sys.ObjectTimeline(uint32(victim))
	if !ok {
		t.Fatalf("no timeline for the victim")
	}
	s := tl.String()
	for _, want := range []string{"alloc", "destroy", "free", "copy"} {
		if !strings.Contains(s, want) {
			t.Errorf("timeline lacks %q:\n%s", want, s)
		}
	}
}

func TestPopulationThroughPublicAPI(t *testing.T) {
	sys, tid := diagSystem(t)
	refs := make([]mem.Ref, 0, 4)
	for i := 0; i < 4; i++ {
		r, err := sys.rc.NewObject(tid)
		if err != nil {
			t.Fatalf("NewObject: %v", err)
		}
		refs = append(refs, r)
	}
	sys.rc.Destroy(refs[0])

	c := sys.Population()
	if c.LiveObjects != 3 || c.FreedSlots != 1 {
		t.Errorf("population live=%d freed=%d, want 3/1", c.LiveObjects, c.FreedSlots)
	}
	if c.ByRC["1"] != 3 {
		t.Errorf("population ByRC[1] = %d, want 3: %+v", c.ByRC["1"], c)
	}
	if c.Tracked != 3 || c.TrackedFreed != 1 {
		t.Errorf("population tracked=%d trackedFreed=%d, want 3/1", c.Tracked, c.TrackedFreed)
	}
	st := sys.Stats()
	if !st.Lifecycle.Enabled || st.Lifecycle.SampledObjects != 4 {
		t.Errorf("stats lifecycle section wrong: %+v", st.Lifecycle)
	}
}

func TestTraceJSONEndpointServesChromeExport(t *testing.T) {
	sys, tid := diagSystem(t)
	r, err := sys.rc.NewObject(tid)
	if err != nil {
		t.Fatalf("NewObject: %v", err)
	}
	var dup mem.Ref
	sys.rc.Copy(&dup, r)
	sys.rc.Destroy(r, dup)

	srv := httptest.NewServer(NewDebugMux(func() *System { return sys }))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/lfrc/trace.json")
	if err != nil {
		t.Fatalf("GET trace.json: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace.json is not Chrome trace JSON: %v", err)
	}
	phases := map[string]bool{}
	sawSpan := false
	for _, e := range trace.TraceEvents {
		phases[e.Ph] = true
		if e.Ph == "b" && strings.Contains(e.Name, "obj ") {
			sawSpan = true
		}
	}
	for _, ph := range []string{"M", "i", "b", "e"} {
		if !phases[ph] {
			t.Errorf("export lacks phase %q (got %v)", ph, phases)
		}
	}
	if !sawSpan {
		t.Errorf("no object lifetime span in export")
	}

	// The metrics endpoint must expose the lifecycle/census gauges too.
	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	mraw, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"lfrc_lifecycle_tracked", "lfrc_population_live_objects", "lfrc_census_live_objects", "lfrc_audit_passes_total"} {
		if !strings.Contains(string(mraw), want) {
			t.Errorf("/metrics lacks %s", want)
		}
	}
}
