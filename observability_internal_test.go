package lfrc

import (
	"strings"
	"testing"

	"lfrc/internal/mem"
)

// TestCorruptionPostmortemNamesRef provokes real use-after-free corruption —
// a write to freed (poisoned) memory, detected when the slot is recycled —
// and asserts the flight recorder's postmortem names the damaged ref and
// carries its trailing events.
func TestCorruptionPostmortemNamesRef(t *testing.T) {
	sys, err := New(WithTraceSampling(1), WithAllocShards(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tid, err := sys.heap.RegisterType(mem.TypeDesc{Name: "victim", NumFields: 2})
	if err != nil {
		t.Fatalf("RegisterType: %v", err)
	}

	victim, err := sys.rc.NewObject(tid)
	if err != nil {
		t.Fatalf("NewObject: %v", err)
	}
	sys.rc.Destroy(victim) // rc 1 -> 0: freed and poisoned

	// A stale thread scribbles on the freed payload.
	sys.heap.Store(sys.heap.FieldAddr(victim, 0), 0xDEAD)

	// With one shard the next same-size allocation recycles the slot and the
	// poison check fires.
	again, err := sys.rc.NewObject(tid)
	if err != nil {
		t.Fatalf("NewObject (recycle): %v", err)
	}
	if again != victim {
		t.Fatalf("expected slot recycle: got %#x, want %#x", again, victim)
	}
	if got := sys.Stats().Heap.Corruptions; got != 1 {
		t.Fatalf("Corruptions = %d, want 1", got)
	}

	pms := sys.Postmortems()
	if len(pms) != 1 {
		t.Fatalf("Postmortems() = %d entries, want 1", len(pms))
	}
	p := pms[0]
	if p.Ref != uint32(victim) {
		t.Errorf("postmortem ref = %#x, want %#x", p.Ref, victim)
	}
	if !strings.Contains(p.Reason, "poison") {
		t.Errorf("postmortem reason = %q, want poison corruption", p.Reason)
	}
	if !strings.Contains(p.String(), "ref=") {
		t.Errorf("postmortem string does not name the ref: %s", p.String())
	}
	// The trailing events must include the victim's own lifecycle (its alloc,
	// destroy, or free), not just unrelated traffic.
	var touches int
	for _, e := range p.Events {
		if e.Ref == uint32(victim) {
			touches++
		}
	}
	if touches == 0 {
		t.Errorf("postmortem events never touch ref %#x: %v", victim, p.Events)
	}
}

// TestAuditViolationCapturesPostmortem corrupts a live object's reference
// count and asserts Audit both reports it and leaves a postmortem naming it.
func TestAuditViolationCapturesPostmortem(t *testing.T) {
	sys, err := New(WithTraceSampling(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tid, err := sys.heap.RegisterType(mem.TypeDesc{Name: "audited", NumFields: 1})
	if err != nil {
		t.Fatalf("RegisterType: %v", err)
	}
	r, err := sys.rc.NewObject(tid)
	if err != nil {
		t.Fatalf("NewObject: %v", err)
	}
	// Inflate the count: no pointer justifies rc=5.
	sys.heap.Store(sys.heap.RCAddr(r), 5)

	vs := sys.Audit()
	if len(vs) == 0 {
		t.Fatal("Audit reported no violations for an inflated rc")
	}
	pms := sys.Postmortems()
	if len(pms) != len(vs) {
		t.Fatalf("Postmortems() = %d entries, want %d (one per violation)", len(pms), len(vs))
	}
	if pms[0].Ref != uint32(r) {
		t.Errorf("postmortem ref = %#x, want %#x", pms[0].Ref, r)
	}
	if !strings.Contains(pms[0].Reason, "audit") {
		t.Errorf("postmortem reason = %q, want audit violation", pms[0].Reason)
	}
}
