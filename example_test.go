package lfrc_test

import (
	"fmt"
	"log"

	"lfrc"
)

// Example demonstrates the complete lifecycle: every node a structure ever
// allocated is deterministically freed by its reference count at Close —
// no garbage collector involved.
func Example() {
	sys, err := lfrc.New()
	if err != nil {
		log.Fatal(err)
	}
	d, err := sys.NewDeque()
	if err != nil {
		log.Fatal(err)
	}
	_ = d.PushRight(1)
	_ = d.PushRight(2)
	_ = d.PushLeft(0)
	var drained []lfrc.Value
	for {
		v, ok := d.PopLeft()
		if !ok {
			break
		}
		drained = append(drained, v)
	}
	fmt.Println(drained)
	d.Close()
	fmt.Printf("live objects after close: %d\n", sys.Stats().Heap.LiveObjects)
	// Output:
	// [0 1 2]
	// live objects after close: 0
}

// ExampleSystem_NewQueue shows the LFRC Michael–Scott queue.
func ExampleSystem_NewQueue() {
	sys, _ := lfrc.New()
	q, _ := sys.NewQueue()
	defer q.Close()

	for v := lfrc.Value(1); v <= 3; v++ {
		_ = q.Enqueue(v * 11)
	}
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// 11
	// 22
	// 33
}

// ExampleSystem_NewSet shows the DCAS-based sorted set.
func ExampleSystem_NewSet() {
	sys, _ := lfrc.New()
	s, _ := sys.NewSet()
	defer s.Close()

	for _, k := range []lfrc.Value{42, 7, 42, 13} {
		added, _ := s.Insert(k)
		fmt.Printf("insert %d: %v\n", k, added)
	}
	fmt.Println("keys:", s.Keys())
	// Output:
	// insert 42: true
	// insert 7: true
	// insert 42: false
	// insert 13: true
	// keys: [7 13 42]
}

// ExampleSet_All iterates a set with the Go 1.23 range-over-func iterator;
// Deque.Drain does the same for consuming a deque.
func ExampleSet_All() {
	sys, _ := lfrc.New()
	s, _ := sys.NewSet()
	defer s.Close()
	for _, k := range []lfrc.Value{42, 7, 13} {
		_, _ = s.Insert(k)
	}
	for k := range s.All() {
		fmt.Println(k)
	}
	// Output:
	// 7
	// 13
	// 42
}

// ExampleDeque_Drain consumes a deque with the range-over-func iterator:
// each value is delivered exactly once even with concurrent consumers.
func ExampleDeque_Drain() {
	sys, _ := lfrc.New()
	d, _ := sys.NewDeque()
	defer d.Close()
	for v := lfrc.Value(1); v <= 4; v++ {
		_ = d.PushRight(v * 10)
	}
	sum := lfrc.Value(0)
	for v := range d.Drain() {
		sum += v
	}
	fmt.Println("sum:", sum)
	// Output:
	// sum: 100
}

// ExampleWithFaultPlan arms the deterministic fault injector: the same plan
// and seed reproduce the identical injection schedule, so a failure found
// under chaos is replayable.
func ExampleWithFaultPlan() {
	sys, _ := lfrc.New(
		lfrc.WithFaultPlan("stack.push:nth=2+4"),
		lfrc.WithFaultSeed(7),
	)
	st, _ := sys.NewStack()
	defer st.Close()
	for v := lfrc.Value(1); v <= 4; v++ {
		_ = st.Push(v) // attempts 2 and 4 are forced to retry internally
	}
	for _, f := range sys.FaultSchedule() {
		fmt.Printf("%s@%d\n", f.Name, f.Attempt)
	}
	// Output:
	// stack.push@2
	// stack.push@4
}

// ExampleSystem_Audit shows the quiescent reference-count audit: the counts
// of a live structure are re-derived from the heap graph and must match
// exactly.
func ExampleSystem_Audit() {
	sys, _ := lfrc.New()
	d, _ := sys.NewDeque()
	defer d.Close()
	for v := lfrc.Value(1); v <= 100; v++ {
		_ = d.PushRight(v)
	}
	fmt.Println("violations:", len(sys.Audit()))
	// Output:
	// violations: 0
}

// ExampleWithEngine selects the lock-free software MCAS engine instead of
// the default hardware-DCAS simulation.
func ExampleWithEngine() {
	sys, _ := lfrc.New(lfrc.WithEngine(lfrc.EngineMCAS))
	fmt.Println(sys.EngineName())
	// Output:
	// mcas
}

// ExampleWithIncrementalDestroy bounds reclamation pauses: dropping a large
// structure parks the work, and DrainZombies finishes it in slices.
func ExampleWithIncrementalDestroy() {
	sys, _ := lfrc.New(lfrc.WithIncrementalDestroy(32))
	q, _ := sys.NewQueue()
	for v := lfrc.Value(1); v <= 1000; v++ {
		_ = q.Enqueue(v)
	}
	q.Close() // bounded work per release; the rest is parked
	sys.DrainZombies(0)
	fmt.Println("live objects:", sys.Stats().Heap.LiveObjects)
	// Output:
	// live objects: 0
}

// ExampleWithReclamation swaps the reclamation policy behind the count-zero
// invariant: the epoch backend defers frees into limbo bins and releases
// them a grace period later, so quiescent code drains explicitly before
// expecting an empty heap.
func ExampleWithReclamation() {
	sys, _ := lfrc.New(lfrc.WithReclamation(lfrc.ReclaimerEpoch))
	st, _ := sys.NewStack()
	for v := lfrc.Value(1); v <= 100; v++ {
		_ = st.Push(v)
	}
	st.Close()
	sys.DrainZombies(0) // flush the limbo bins
	fmt.Println(sys.ReclaimerName())
	fmt.Println("live objects:", sys.Stats().Heap.LiveObjects)
	fmt.Println("pending frees:", sys.Stats().Reclaim.Pending)
	// Output:
	// epoch
	// live objects: 0
	// pending frees: 0
}
