package lfrc

import (
	"io"
	"iter"
	"time"

	"lfrc/internal/contend"
	"lfrc/internal/obs"
	"lfrc/internal/timeline"
)

// TimelineSample is one interval of the continuous telemetry timeline:
// per-interval deltas of the heap/RC/reclaim/degradation counters plus
// instantaneous gauges, latency quantiles, and the contention top-K. See the
// internal timeline.Sample field docs for precise semantics.
type TimelineSample = timeline.Sample

// TimelineStats is the timeline sampler's own accounting (cadence, ring
// occupancy, wraparound drops).
type TimelineStats = timeline.Stats

// TimelineOptions configures the telemetry timeline (WithTimeline).
type TimelineOptions struct {
	// Interval is the capture cadence; 0 selects the 100ms default.
	Interval time.Duration

	// Slots is the ring capacity, rounded up to a power of two (minimum
	// 8); 0 selects the 512-slot default (~51s at the default cadence).
	Slots int

	// Manual suppresses the background capture goroutine; samples are
	// taken only by explicit CaptureTimelineSample calls. Benchmarks and
	// deterministic tests use it.
	Manual bool
}

// WithTimeline enables the continuous telemetry timeline: a background
// sampler that every interval captures a delta snapshot of every counter the
// system already maintains — heap and RC stripes, per-shard allocation,
// zombie and reclaim-limbo depth, degradation counters, fault firings, the
// contention top-K, and observer latency quantiles — into a fixed-size
// lock-free ring. Capture is read-only against the existing counters and
// allocates nothing, so instrumented operations pay nothing new. Read the
// series back with System.Timeline, System.TimelineStats, the
// /debug/lfrc/timeline.json and .csv endpoints, or the lfrc_timeline_* meta
// metrics; watch it live with cmd/lfrctop. Call System.Close to stop the
// sampler.
func WithTimeline(o TimelineOptions) Option {
	return optionFunc(func(c *config) {
		c.timeline = true
		c.timelineOpts = o
	})
}

// newTimeline builds (and unless Manual, starts) the system's sampler.
// Called once from New after every subsystem the capture closure reads is in
// place.
func (s *System) newTimeline(o TimelineOptions) {
	opts := []timeline.Option{
		timeline.WithInterval(o.Interval),
		timeline.WithSlots(o.Slots),
		timeline.WithRoleNames(func(id uint8) string { return contend.Role(id).String() }),
	}
	if s.wd != nil {
		opts = append(opts, timeline.WithOnSample(s.observeHealth))
	}
	s.tl = timeline.New(s.captureTimeline, opts...)
	if !o.Manual {
		s.tl.Start()
	}
}

// p50p99 is the quantile set the capture path digests latency histograms to
// (package-level so the capture closure allocates nothing per interval).
var p50p99 = []float64{0.5, 0.99}

// captureTimeline fills one cumulative sample from the system's counters. It
// is the timeline's capture callback: strictly read-only, allocation-free,
// and never blocking (every source below is an atomic-load snapshot).
func (s *System) captureTimeline(sm *timeline.Sample) {
	hs := s.heap.Stats()
	sm.HeapAllocs = hs.Allocs
	sm.HeapFrees = hs.Frees
	sm.HeapRecycles = hs.Recycles
	sm.HeapLiveObjects = hs.LiveObjects
	sm.HeapLiveWords = hs.LiveWords
	sm.HeapHighWater = hs.HighWater

	rs := s.rc.Stats()
	sm.RCLoads = rs.Loads
	sm.RCLoadRetries = rs.LoadRetries
	sm.RCStores = rs.Stores
	sm.RCCopies = rs.Copies
	sm.RCCAS = rs.CASOps
	sm.RCDCAS = rs.DCASOps
	sm.RCDestroys = rs.Destroys
	sm.RCZombiePushes = rs.ZombiePushes

	sm.AllocGlobalFree = s.heap.GlobalFreeListed()
	sm.Shards = int64(s.heap.ShardAllocsInto(sm.ShardAllocs[:]))

	rst := s.rc.Reclaimer().Stats()
	sm.Zombies = rst.Pending
	sm.ReclaimRetired = rst.Retired
	sm.ReclaimFreed = rst.Freed
	sm.ReclaimPending = rst.Pending
	sm.ReclaimEpoch = rst.Epoch

	sm.DegRetries = s.deg.retries.Load()
	sm.DegRecoveries = s.deg.recoveries.Load()
	sm.DegExhaustions = s.deg.exhaustions.Load()
	sm.DegZombiesDrained = s.deg.zombiesDrained.Load()

	if s.fj != nil {
		sm.FaultInjected = s.fj.Fires()
	}
	if s.obs != nil {
		sm.ObsRecorded = s.obs.Recorded()
		var q [2]int64
		if s.obs.KindLatencyQuantiles(obs.KindLoad, p50p99, q[:]) > 0 {
			sm.LatLoadP50, sm.LatLoadP99 = q[0], q[1]
		}
		if s.obs.KindLatencyQuantiles(obs.KindStore, p50p99, q[:]) > 0 {
			sm.LatStoreP50, sm.LatStoreP99 = q[0], q[1]
		}
		if s.obs.RetryQuantiles(p50p99[1:], q[:1]) > 0 {
			sm.RetryP99 = q[0]
		}
	}
	if s.ct != nil {
		var top [timeline.TopK]contend.HotSample
		s.ct.TopInto(top[:])
		for i, h := range top {
			sm.Hot[i] = timeline.HotCell{
				Addr:     h.Addr,
				RoleID:   h.Role,
				Hot:      h.Hot,
				Failures: h.Failures,
			}
		}
	}
}

// Timeline iterates the retained telemetry samples, oldest first. The
// iteration walks a consistent snapshot taken when it starts; samples
// captured during the walk do not appear. Without WithTimeline the sequence
// is empty.
func (s *System) Timeline() iter.Seq[TimelineSample] {
	return func(yield func(TimelineSample) bool) {
		for _, sm := range s.tl.Snapshot() {
			if !yield(sm) {
				return
			}
		}
	}
}

// TimelineStats reports the sampler's accounting: cadence, ring capacity and
// occupancy, and how many samples wraparound has dropped. Without
// WithTimeline every field is zero.
func (s *System) TimelineStats() TimelineStats { return s.tl.Stats() }

// CaptureTimelineSample takes one timeline sample immediately, independent of
// the background cadence (the only capture source under
// TimelineOptions.Manual). Without WithTimeline it is a no-op.
func (s *System) CaptureTimelineSample() { s.tl.CaptureNow() }

// WriteTimelineJSON writes the schema-versioned timeline document (the same
// bytes served on /debug/lfrc/timeline.json). Without WithTimeline it writes
// a valid document with Enabled false.
func (s *System) WriteTimelineJSON(w io.Writer) error { return s.tl.WriteJSON(w) }

// WriteTimelineCSV writes the retained samples as CSV (the same bytes served
// on /debug/lfrc/timeline.csv). Without WithTimeline it writes only the
// header row.
func (s *System) WriteTimelineCSV(w io.Writer) error { return s.tl.WriteCSV(w) }
