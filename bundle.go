package lfrc

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"lfrc/internal/obs"
)

// BundleSchemaVersion is the diagnostic-bundle manifest schema version; bump
// on any incompatible change to the manifest or the artifact roster.
const BundleSchemaVersion = 1

// BundleHost pins the environment a bundle was captured in.
type BundleHost struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// BundleManifest is the bundle's manifest.json: enough context to interpret
// every other artifact offline — which engine and reclamation backend the
// system ran, the fault plan and seed (a failing chaos run is replayable from
// these), and the artifact roster.
type BundleManifest struct {
	SchemaVersion int        `json:"schema_version"`
	CreatedNS     int64      `json:"created_ns"`
	Host          BundleHost `json:"host"`

	Engine    string `json:"engine"`
	Reclaimer string `json:"reclaimer"`

	// FaultSeed/FaultPlan reproduce the injector; FaultSchedule is the tail
	// of the firing log ("point@attempt ..."), empty when nothing fired.
	FaultSeed     uint64 `json:"fault_seed"`
	FaultPlan     string `json:"fault_plan"`
	FaultSchedule string `json:"fault_schedule"`

	Artifacts []string `json:"artifacts"`
}

// WriteBundle writes the system's diagnostic bundle: one tar.gz capturing the
// whole observability stack at this instant — manifest.json, stats.json,
// timeline.json, incidents.json, census.json + census.pb.gz,
// contention.pb.gz (when WithContention), postmortems.json, and metrics.txt
// — every artifact the bytes the corresponding live endpoint would have
// served. The bundle is the black box cmd/lfrcdoctor diagnoses offline; it is
// also served on /debug/lfrc/bundle.tar.gz and auto-captured on incidents
// when WatchdogOptions.BundleDir is set.
//
// Capture is safe while mutators run (every source is a race-clean snapshot),
// but like any cross-counter view it is exact only at quiescence.
func (s *System) WriteBundle(w io.Writer) error {
	type artifact struct {
		name string
		data []byte
	}
	var arts []artifact
	add := func(name string, fill func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := fill(&buf); err != nil {
			return fmt.Errorf("lfrc: bundle artifact %s: %w", name, err)
		}
		arts = append(arts, artifact{name, buf.Bytes()})
		return nil
	}
	addJSON := func(name string, v any) error {
		return add(name, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		})
	}

	// One census feeds both renderings so they describe the same heap.
	snap := s.Census()
	pms := s.Postmortems()
	if pms == nil {
		pms = []obs.Postmortem{}
	}

	if err := addJSON("stats.json", s.Stats()); err != nil {
		return err
	}
	if err := add("timeline.json", s.WriteTimelineJSON); err != nil {
		return err
	}
	if err := add("incidents.json", s.WriteIncidentsJSON); err != nil {
		return err
	}
	if err := add("census.json", snap.WriteJSON); err != nil {
		return err
	}
	if err := add("census.pb.gz", snap.WriteProfile); err != nil {
		return err
	}
	if s.ct != nil {
		if err := add("contention.pb.gz", s.WriteContentionProfile); err != nil {
			return err
		}
	}
	if err := addJSON("postmortems.json", map[string]any{"postmortems": pms}); err != nil {
		return err
	}
	if err := add("metrics.txt", func(w io.Writer) error { s.WriteMetrics(w); return nil }); err != nil {
		return err
	}

	m := BundleManifest{
		SchemaVersion: BundleSchemaVersion,
		CreatedNS:     time.Now().UnixNano(),
		Host: BundleHost{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
		Engine:    s.EngineName(),
		Reclaimer: s.ReclaimerName(),
		Artifacts: []string{"manifest.json"},
	}
	if s.fj != nil {
		m.FaultSeed = s.fj.Seed()
		m.FaultSchedule = s.fj.ScheduleString(64)
	}
	m.FaultPlan = s.faultPlan
	for _, a := range arts {
		m.Artifacts = append(m.Artifacts, a.name)
	}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	arts = append([]artifact{{"manifest.json", append(mb, '\n')}}, arts...)

	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	// One shared ModTime (the capture instant) keeps the archive bytes a
	// pure function of the artifact contents.
	mod := time.Unix(0, m.CreatedNS)
	for _, a := range arts {
		hdr := &tar.Header{
			Name:    a.name,
			Mode:    0o644,
			Size:    int64(len(a.data)),
			ModTime: mod,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		if _, err := tw.Write(a.data); err != nil {
			return err
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}
